#include "serve/router.h"

#include <atomic>
#include <utility>

#include "common/macros.h"
#include "common/mutex.h"
#include "common/string_util.h"
#include "obs/metrics.h"

namespace cgkgr {
namespace serve {

namespace {

/// One label set per Router instance: {router="0"}, {router="1"}, ... keeps
/// concurrent routers' counts separable in the shared registry.
obs::Labels NextRouterLabels() {
  static std::atomic<int64_t> next_id{0};
  return {{"router", StrFormat("%lld", static_cast<long long>(next_id.fetch_add(
                                  1, std::memory_order_relaxed)))}};
}

/// splitmix64 finalizer over the user id mixed with the alias hash: the
/// assignment is a pure function of (alias, user), so arms are sticky.
uint64_t SplitHash(const std::string& alias, int64_t user) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : alias) {
    h = (h ^ static_cast<unsigned char>(c)) * 0x100000001B3ULL;
  }
  h ^= static_cast<uint64_t>(user) + 0x9E3779B97F4A7C15ULL;
  h ^= h >> 30;
  h *= 0xBF58476D1CE4E5B9ULL;
  h ^= h >> 27;
  h *= 0x94D049BB133111EBULL;
  return h ^ (h >> 31);
}

}  // namespace

Router::Router() : labels_(NextRouterLabels()) {
  obs::Labels labels = labels_;
  labels.push_back({"tenant", "<unknown>"});
  unknown_tenant_ = obs::MetricsRegistry::Default().GetCounter(
      "serve_router_unknown_tenant_total", labels);
}

bool Router::SplitPicksArmA(const std::string& alias, int64_t user,
                            double fraction_a) {
  // Map the hash to [0, 1) with 53-bit precision and compare against the
  // fraction; exact 0.0 / 1.0 fractions degenerate to all-B / all-A.
  const double unit =
      static_cast<double>(SplitHash(alias, user) >> 11) * 0x1.0p-53;
  return unit < fraction_a;
}

Status Router::AddTenant(const std::string& tenant,
                         std::shared_ptr<const Snapshot> snapshot,
                         const EngineOptions& options) {
  if (tenant.empty()) {
    return Status::InvalidArgument("Router::AddTenant: empty tenant name");
  }
  Result<std::unique_ptr<Engine>> engine =
      Engine::Create(std::move(snapshot), options);
  CGKGR_RETURN_NOT_OK(engine.status());
  obs::Labels labels = labels_;
  labels.push_back({"tenant", tenant});
  obs::Counter* requests = obs::MetricsRegistry::Default().GetCounter(
      "serve_router_requests_total", labels);
  WriterMutexLock lock(&mu_);
  if (engines_.count(tenant) != 0 || splits_.count(tenant) != 0) {
    return Status::AlreadyExists("Router::AddTenant: tenant \"" + tenant +
                                 "\" already hosted");
  }
  engines_[tenant] = std::move(engine).value();
  tenant_requests_[tenant] = requests;
  if (default_tenant_.empty()) default_tenant_ = tenant;
  return Status::OK();
}

Status Router::AddSplit(const std::string& alias, const std::string& arm_a,
                        const std::string& arm_b, double fraction_a) {
  if (alias.empty()) {
    return Status::InvalidArgument("Router::AddSplit: empty alias");
  }
  if (!(fraction_a >= 0.0 && fraction_a <= 1.0)) {
    return Status::InvalidArgument(
        "Router::AddSplit: fraction_a must lie in [0, 1]");
  }
  WriterMutexLock lock(&mu_);
  if (engines_.count(alias) != 0 || splits_.count(alias) != 0) {
    return Status::AlreadyExists("Router::AddSplit: name \"" + alias +
                                 "\" already hosted");
  }
  if (engines_.count(arm_a) == 0) {
    return Status::NotFound("Router::AddSplit: arm \"" + arm_a +
                            "\" is not a hosted tenant");
  }
  if (engines_.count(arm_b) == 0) {
    return Status::NotFound("Router::AddSplit: arm \"" + arm_b +
                            "\" is not a hosted tenant");
  }
  splits_[alias] = Split{arm_a, arm_b, fraction_a};
  return Status::OK();
}

Status Router::SetDefaultTenant(const std::string& tenant) {
  WriterMutexLock lock(&mu_);
  if (engines_.count(tenant) == 0 && splits_.count(tenant) == 0) {
    return Status::NotFound("Router::SetDefaultTenant: unknown tenant \"" +
                            tenant + "\"");
  }
  default_tenant_ = tenant;
  return Status::OK();
}

Engine* Router::Resolve(const Request& request, std::string* resolved) const {
  const std::string& name =
      request.tenant.empty() ? default_tenant_ : request.tenant;
  std::string target = name;
  const auto split = splits_.find(name);
  if (split != splits_.end()) {
    target = SplitPicksArmA(name, request.user, split->second.fraction_a)
                 ? split->second.arm_a
                 : split->second.arm_b;
  }
  const auto engine = engines_.find(target);
  if (engine == engines_.end()) return nullptr;
  *resolved = target;
  return engine->second.get();
}

Response Router::Handle(const Request& request) {
  Engine* engine = nullptr;
  std::string resolved;
  {
    ReaderMutexLock lock(&mu_);
    engine = Resolve(request, &resolved);
    if (engine != nullptr) tenant_requests_.at(resolved)->Increment();
  }
  if (engine == nullptr) {
    unknown_tenant_->Increment();
    Response response;
    response.status = ResponseStatus::kUnknownTenant;
    response.tenant = request.tenant;
    return response;
  }
  Response response = engine->Handle(request);
  response.tenant = resolved;
  return response;
}

std::vector<Response> Router::HandleBatch(
    const std::vector<Request>& requests) {
  // Resolve everything under one reader lock, grouping request indices per
  // engine so each engine sees one coalescing HandleBatch call.
  std::vector<Response> responses(requests.size());
  std::vector<std::string> resolved(requests.size());
  std::map<Engine*, std::vector<size_t>> groups;
  {
    ReaderMutexLock lock(&mu_);
    for (size_t i = 0; i < requests.size(); ++i) {
      Engine* engine = Resolve(requests[i], &resolved[i]);
      if (engine == nullptr) {
        unknown_tenant_->Increment();
        responses[i].status = ResponseStatus::kUnknownTenant;
        responses[i].tenant = requests[i].tenant;
        continue;
      }
      tenant_requests_.at(resolved[i])->Increment();
      groups[engine].push_back(i);
    }
  }
  for (const auto& [engine, indices] : groups) {
    std::vector<Request> sub;
    sub.reserve(indices.size());
    for (const size_t i : indices) sub.push_back(requests[i]);
    std::vector<Response> sub_responses = engine->HandleBatch(sub);
    for (size_t j = 0; j < indices.size(); ++j) {
      responses[indices[j]] = std::move(sub_responses[j]);
      responses[indices[j]].tenant = resolved[indices[j]];
    }
  }
  return responses;
}

Engine* Router::GetEngine(const std::string& tenant) const {
  ReaderMutexLock lock(&mu_);
  const auto it = engines_.find(tenant);
  return it == engines_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Router::TenantNames() const {
  ReaderMutexLock lock(&mu_);
  std::vector<std::string> names;
  names.reserve(engines_.size());
  for (const auto& [name, engine] : engines_) names.push_back(name);
  return names;
}

}  // namespace serve
}  // namespace cgkgr
