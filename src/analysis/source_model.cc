#include "analysis/source_model.h"

#include <cctype>
#include <cstddef>
#include <set>
#include <utility>

namespace cgkgr {
namespace analysis {

namespace {

const std::set<std::string>& ControlKeywords() {
  static const std::set<std::string> kWords = {
      "if",     "for",    "while",  "switch",   "catch",  "return",
      "sizeof", "static", "assert", "alignof",  "typeid", "decltype",
      "else",   "do",     "new",    "delete"};
  return kWords;
}

bool IsRequiresMacro(const std::string& t) {
  return t == "CGKGR_REQUIRES" || t == "CGKGR_REQUIRES_SHARED";
}

bool IsFunctionAnnotationMacro(const std::string& t) {
  return IsRequiresMacro(t) || t == "CGKGR_EXCLUDES" || t == "CGKGR_ACQUIRE" ||
         t == "CGKGR_ACQUIRE_SHARED" || t == "CGKGR_RELEASE" ||
         t == "CGKGR_RELEASE_SHARED" || t == "CGKGR_TRY_ACQUIRE" ||
         t == "CGKGR_RETURN_CAPABILITY" || t == "CGKGR_ASSERT_CAPABILITY";
}

/// Skips a balanced angle-bracket run starting at `i` (which must be `<`).
/// Returns the index just past the matching `>`, or `i + 1` when the run
/// does not close before a hard stop (statement end) — callers treat that
/// as "not a template argument list".
size_t SkipAngles(const std::vector<Token>& toks, size_t i) {
  int depth = 0;
  size_t j = i;
  while (j < toks.size()) {
    const std::string& t = toks[j].text;
    if (t == "<") {
      ++depth;
    } else if (t == ">") {
      if (--depth == 0) return j + 1;
    } else if (t == ">>") {
      depth -= 2;
      if (depth <= 0) return j + 1;
    } else if (t == ";" || t == "{" || t == "}") {
      return i + 1;
    }
    ++j;
  }
  return i + 1;
}

}  // namespace

std::string NormalizeMutexExpr(const std::vector<Token>& toks, size_t begin,
                               size_t end) {
  std::string out;
  for (size_t i = begin; i < end && i < toks.size(); ++i) {
    if (i == begin && toks[i].text == "&") continue;
    out += toks[i].text;
  }
  return out;
}

std::string MutexLastComponent(const std::string& expr) {
  // Last maximal identifier run in the expression.
  std::string last;
  std::string run;
  for (const char c : expr) {
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
      run.push_back(c);
    } else {
      if (!run.empty()) last = run;
      run.clear();
    }
  }
  if (!run.empty()) last = run;
  return last.empty() ? expr : last;
}

TranslationUnit BuildTranslationUnit(LexedFile lex) {
  TranslationUnit tu;
  tu.lex = std::move(lex);
  const std::vector<Token>& toks = tu.lex.tokens;

  // --- Class/struct definition spans -------------------------------------
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    const Token& tok = toks[i];
    if (tok.kind != TokKind::kIdent ||
        (tok.text != "class" && tok.text != "struct")) {
      continue;
    }
    if (i > 0 && TokIs(toks, i - 1, "enum")) continue;  // enum class
    // Skip attributes / alignas to the name.
    size_t j = i + 1;
    if (j < toks.size() && toks[j].text == "[") {
      if (toks[j].match < 0) continue;
      j = static_cast<size_t>(toks[j].match) + 1;
    }
    if (j >= toks.size() || toks[j].kind != TokKind::kIdent) continue;
    // Out-of-line nested definitions (`struct Outer::Inner {`) are named
    // by the last component of the qualified chain.
    while (j + 2 < toks.size() && toks[j + 1].text == "::" &&
           toks[j + 2].kind == TokKind::kIdent) {
      j += 2;
    }
    const std::string name = toks[j].text;
    // Find the body '{': stop on shapes that mean "not a definition".
    size_t k = j + 1;
    int angle = 0;
    bool is_def = false;
    while (k < toks.size()) {
      const std::string& t = toks[k].text;
      if (t == "<") {
        ++angle;
      } else if (t == ">") {
        if (angle == 0) break;  // template parameter, `template <class T>`
        --angle;
      } else if (t == ">>") {
        angle -= 2;
        if (angle < 0) break;
      } else if (t == ";" || t == "=" || t == ")" || t == ",") {
        break;  // forward declaration / template param / parameter type
      } else if (t == "{") {
        is_def = true;
        break;
      }
      ++k;
    }
    if (!is_def || toks[k].match < 0) continue;
    ClassInfo info;
    info.name = name;
    info.body_begin = k;
    info.body_end = static_cast<size_t>(toks[k].match);
    tu.classes.push_back(std::move(info));
  }

  // Innermost class containing a token index (spans are discovered in
  // lexical order; the latest-starting containing span is innermost).
  auto innermost_class = [&tu](size_t idx) -> int {
    int best = -1;
    for (size_t c = 0; c < tu.classes.size(); ++c) {
      if (tu.classes[c].body_begin < idx && idx < tu.classes[c].body_end) {
        if (best < 0 ||
            tu.classes[c].body_begin > tu.classes[best].body_begin) {
          best = static_cast<int>(c);
        }
      }
    }
    return best;
  };

  // --- Lock annotations inside class bodies ------------------------------
  for (size_t i = 1; i + 1 < toks.size(); ++i) {
    const Token& tok = toks[i];
    if (tok.kind != TokKind::kIdent) continue;
    const int ci = innermost_class(i);

    // Mutex members: [cgkgr::] Mutex|SharedMutex name ;|=|{
    if ((tok.text == "Mutex" || tok.text == "SharedMutex") && ci >= 0 &&
        i + 2 < toks.size() && toks[i + 1].kind == TokKind::kIdent &&
        (toks[i + 2].text == ";" || toks[i + 2].text == "=" ||
         toks[i + 2].text == "{" ||
         toks[i + 2].text.rfind("CGKGR_", 0) == 0)) {
      tu.classes[static_cast<size_t>(ci)].mutexes.push_back(toks[i + 1].text);
    }

    if ((tok.text == "CGKGR_GUARDED_BY" || tok.text == "CGKGR_PT_GUARDED_BY") &&
        toks[i + 1].text == "(" && toks[i + 1].match > 0 && ci >= 0 &&
        toks[i - 1].kind == TokKind::kIdent) {
      GuardedMember member;
      member.name = toks[i - 1].text;
      member.mutex_expr = NormalizeMutexExpr(
          toks, i + 2, static_cast<size_t>(toks[i + 1].match));
      member.line = tok.line;
      tu.classes[static_cast<size_t>(ci)].guarded.push_back(std::move(member));
    }

    if ((tok.text == "CGKGR_ACQUIRED_AFTER" ||
         tok.text == "CGKGR_ACQUIRED_BEFORE") &&
        toks[i + 1].text == "(" && toks[i + 1].match > 0 && ci >= 0 &&
        toks[i - 1].kind == TokKind::kIdent) {
      const std::string member = toks[i - 1].text;
      const std::string other = NormalizeMutexExpr(
          toks, i + 2, static_cast<size_t>(toks[i + 1].match));
      DeclaredLockOrder order;
      order.line = tok.line;
      if (tok.text == "CGKGR_ACQUIRED_AFTER") {
        order.before = MutexLastComponent(other);
        order.after = member;
      } else {
        order.before = member;
        order.after = MutexLastComponent(other);
      }
      tu.classes[static_cast<size_t>(ci)].declared_order.push_back(
          std::move(order));
    }
  }

  // --- Function definitions and annotated method declarations ------------
  for (size_t i = 1; i + 1 < toks.size(); ++i) {
    const Token& tok = toks[i];
    if (tok.kind != TokKind::kIdent || toks[i + 1].text != "(" ||
        toks[i + 1].match < 0) {
      continue;
    }
    if (ControlKeywords().count(tok.text) != 0) continue;
    if (tok.preprocessor) continue;
    // Annotation macros carry their own parens; `CGKGR_REQUIRES(mu_) {`
    // would otherwise look like a definition named CGKGR_REQUIRES.
    if (tok.text.rfind("CGKGR_", 0) == 0) continue;
    // A name right after `,` or `:` is a constructor-initializer member
    // (`: a_(1), b_(2) {`), never a definition's name.
    if (toks[i - 1].text == "," || toks[i - 1].text == ":") continue;
    // `Foo bar(...);` where bar is a variable with ctor args looks the same
    // as a function declaration; the body search below disambiguates (a
    // variable declaration hits `;` without annotations and is dropped
    // unless annotated — harmless for MethodDecl since annotations only
    // appear on real declarations).
    size_t close = static_cast<size_t>(toks[i + 1].match);

    FunctionInfo fn;
    fn.name = tok.text;
    fn.line = tok.line;
    if (toks[i - 1].text == "~") fn.name = "~" + fn.name;
    size_t qual_at = toks[i - 1].text == "~" ? i - 1 : i;
    if (qual_at >= 2 && toks[qual_at - 1].text == "::" &&
        toks[qual_at - 2].kind == TokKind::kIdent) {
      fn.qualifier = toks[qual_at - 2].text;
    }

    // Walk the post-parameter clause: cv/ref qualifiers, annotations,
    // trailing return, constructor initializer list; stop at body `{`,
    // declaration `;`, or anything unrecognized.
    size_t j = close + 1;
    bool in_init_list = false;
    bool found_body = false;
    bool is_decl = false;
    while (j < toks.size()) {
      const std::string& t = toks[j].text;
      if (t == "{" && !in_init_list) {
        found_body = true;
        break;
      }
      if (t == ";") {
        is_decl = true;
        break;
      }
      if (t == "const" || t == "noexcept" || t == "override" || t == "final" ||
          t == "mutable" || t == "&" || t == "&&" || t == "try") {
        ++j;
        continue;
      }
      if (t == "->") {  // trailing return type
        ++j;
        while (j < toks.size() &&
               (toks[j].kind == TokKind::kIdent || toks[j].text == "::" ||
                toks[j].text == "*" || toks[j].text == "&")) {
          ++j;
          if (j < toks.size() && toks[j].text == "<") j = SkipAngles(toks, j);
        }
        continue;
      }
      if (toks[j].kind == TokKind::kIdent && t.rfind("CGKGR_", 0) == 0) {
        if (t == "CGKGR_NO_THREAD_SAFETY_ANALYSIS") {
          fn.no_thread_safety_analysis = true;
          ++j;
          continue;
        }
        if (IsFunctionAnnotationMacro(t) && j + 1 < toks.size() &&
            toks[j + 1].text == "(" && toks[j + 1].match > 0) {
          if (IsRequiresMacro(t)) {
            const std::string expr = NormalizeMutexExpr(
                toks, j + 2, static_cast<size_t>(toks[j + 1].match));
            fn.requires_locks.push_back(MutexLastComponent(expr));
          }
          j = static_cast<size_t>(toks[j + 1].match) + 1;
          continue;
        }
        break;  // unknown CGKGR_ macro shape
      }
      if (t == ":" && !in_init_list) {  // constructor initializer list
        in_init_list = true;
        ++j;
        continue;
      }
      if (in_init_list) {
        // member-name [<...>] then (args) or {args}, separated by commas.
        if (toks[j].kind == TokKind::kIdent || t == "::") {
          ++j;
          continue;
        }
        if (t == "<") {
          j = SkipAngles(toks, j);
          continue;
        }
        if ((t == "(" || t == "[") && toks[j].match > 0) {
          j = static_cast<size_t>(toks[j].match) + 1;
          continue;
        }
        if (t == "{" ) {
          // Brace-init of a member, only when directly after a name; the
          // body `{` was handled above — to get here the previous token
          // must be an identifier or `>`.
          if (toks[j].match > 0 &&
              (toks[j - 1].kind == TokKind::kIdent ||
               toks[j - 1].text == ">")) {
            j = static_cast<size_t>(toks[j].match) + 1;
            continue;
          }
          found_body = true;
          break;
        }
        if (t == ",") {
          ++j;
          continue;
        }
        break;
      }
      break;  // unrecognized clause — not a function definition
    }

    const int ci = innermost_class(i);
    if (found_body && toks[j].match > 0) {
      fn.body_begin = j;
      fn.body_end = static_cast<size_t>(toks[j].match);
      fn.enclosing_class = ci;
      const std::string class_name =
          !fn.qualifier.empty()
              ? fn.qualifier
              : (ci >= 0 ? tu.classes[static_cast<size_t>(ci)].name : "");
      fn.is_ctor_or_dtor =
          !fn.name.empty() &&
          (fn.name[0] == '~' || (!class_name.empty() && fn.name == class_name));
      tu.functions.push_back(std::move(fn));
    } else if (is_decl && ci >= 0 &&
               (!fn.requires_locks.empty() || fn.no_thread_safety_analysis)) {
      MethodDecl decl;
      decl.class_name = tu.classes[static_cast<size_t>(ci)].name;
      decl.name = fn.name;
      decl.requires_locks = fn.requires_locks;
      decl.no_thread_safety_analysis = fn.no_thread_safety_analysis;
      tu.method_decls.push_back(std::move(decl));
    }
  }

  return tu;
}

}  // namespace analysis
}  // namespace cgkgr
