#ifndef CGKGR_ANALYSIS_SOURCE_MODEL_H_
#define CGKGR_ANALYSIS_SOURCE_MODEL_H_

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/source_lexer.h"

namespace cgkgr {
namespace analysis {

/// \file
/// A structural model of one translation unit built on the token stream:
/// class/struct body spans with their lock annotations, and function body
/// spans with their qualifiers. Heuristic by design — it does not parse
/// C++, it recognizes the shapes the rule packs need (see source_lint.h)
/// and stays silent when a shape is ambiguous, so rules underapproximate
/// instead of false-positive.

/// A member declared with CGKGR_GUARDED_BY / CGKGR_PT_GUARDED_BY.
struct GuardedMember {
  std::string name;
  /// Normalized text of the annotation argument ("mu_", "shard.mu").
  std::string mutex_expr;
  int line = 0;
};

/// A mutex-ordering edge declared with CGKGR_ACQUIRED_AFTER /
/// CGKGR_ACQUIRED_BEFORE on a mutex member: `before` must be taken first.
struct DeclaredLockOrder {
  std::string before;
  std::string after;
  int line = 0;
};

/// One class/struct definition span.
struct ClassInfo {
  std::string name;
  /// Token indices of the body braces `{` ... `}`.
  size_t body_begin = 0;
  size_t body_end = 0;
  /// Mutex members (declared as cgkgr::Mutex / SharedMutex / Mutex).
  std::vector<std::string> mutexes;
  std::vector<GuardedMember> guarded;
  std::vector<DeclaredLockOrder> declared_order;
};

/// One function definition span (has a body in this TU).
struct FunctionInfo {
  /// Qualifier for out-of-line members ("Engine" in `Engine::Rank`),
  /// empty for free functions and in-class definitions.
  std::string qualifier;
  std::string name;
  /// Index into TranslationUnit::classes when the body sits lexically
  /// inside a class definition, else -1.
  int enclosing_class = -1;
  /// Token indices of the body braces `{` ... `}`.
  size_t body_begin = 0;
  size_t body_end = 0;
  int line = 0;
  /// Normalized arguments of CGKGR_REQUIRES / CGKGR_REQUIRES_SHARED on the
  /// definition itself.
  std::vector<std::string> requires_locks;
  bool no_thread_safety_analysis = false;
  bool is_ctor_or_dtor = false;
};

/// A member-function *declaration* (no body) carrying lock annotations —
/// out-of-line definitions inherit these from the class body.
struct MethodDecl {
  std::string class_name;
  std::string name;
  std::vector<std::string> requires_locks;
  bool no_thread_safety_analysis = false;
};

struct TranslationUnit {
  LexedFile lex;
  std::vector<ClassInfo> classes;
  std::vector<FunctionInfo> functions;
  std::vector<MethodDecl> method_decls;
};

/// Builds the structural model for a lexed file.
TranslationUnit BuildTranslationUnit(LexedFile lex);

/// Normalizes a mutex expression from annotation/guard-argument tokens:
/// joins token texts, strips a leading `&`. "shard.mu", "CaptureMutex()".
std::string NormalizeMutexExpr(const std::vector<Token>& toks, size_t begin,
                               size_t end);

/// The final identifier component of a normalized mutex expression
/// ("shard.mu" -> "mu", "CaptureMutex()" -> "CaptureMutex").
std::string MutexLastComponent(const std::string& expr);

}  // namespace analysis
}  // namespace cgkgr

#endif  // CGKGR_ANALYSIS_SOURCE_MODEL_H_
