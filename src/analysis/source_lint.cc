#include "analysis/source_lint.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "analysis/source_packs.h"
#include "common/macros.h"
#include "common/string_util.h"

namespace cgkgr {
namespace analysis {

namespace internal {

bool PathStartsWith(const std::string& path, std::string_view prefix) {
  return path.compare(0, prefix.size(), prefix) == 0;
}

bool InSrc(const std::string& path) { return PathStartsWith(path, "src/"); }

Emitter::Emitter(const std::set<std::string>* enabled_rules,
                 SourceLintReport* report)
    : enabled_rules_(enabled_rules), report_(report) {}

bool Emitter::Enabled(const std::string& rule) const {
  return enabled_rules_->empty() || enabled_rules_->count(rule) != 0;
}

void Emitter::Emit(const LexedFile& lex, int line, const std::string& rule,
                   std::string message) {
  if (!Enabled(rule)) return;
  if (lex.Suppressed(rule, line)) {
    ++report_->inline_suppressed;
    return;
  }
  Finding finding;
  finding.file = lex.path;
  finding.line = line;
  finding.rule = rule;
  finding.message = std::move(message);
  report_->findings.push_back(std::move(finding));
}

}  // namespace internal

using internal::RepoModel;

std::string Finding::ToString() const {
  return StrFormat("%s:%d: [%s] %s", file.c_str(), line, rule.c_str(),
                   message.c_str());
}

std::string Finding::BaselineKey() const { return file + ":" + rule; }

const std::vector<RuleInfo>& RuleCatalog() {
  static const std::vector<RuleInfo> kRules = {
      // Determinism pack — the static side of PR 4's bit-identity contract.
      {"det-unordered-iter", "determinism",
       "iterating an unordered container where the loop body feeds a "
       "reduction or ordered output (iteration order is unspecified)"},
      {"det-naive-float-sum", "determinism",
       "serial float accumulator or std::accumulate outside the sanctioned "
       "tensor::Sum cascade / double-accumulator helpers"},
      {"det-ambient-rng", "determinism",
       "time()/rand()/std::random_device/std::mt19937 outside common/rng — "
       "all randomness flows from the seeded, forkable cgkgr::Rng"},
      // Memory pack — ownership, persistence, and page discipline.
      {"naked-new", "memory",
       "naked new outside std::make_unique/make_shared or a container"},
      {"raw-ofstream", "memory",
       "std::ofstream state write outside src/ckpt/ (atomic publish + CRC "
       "framing live there; see docs/checkpointing.md)"},
      {"discarded-status", "memory",
       "a Status/Result-returning call used as a bare statement (resolved "
       "over full multi-line call expressions)"},
      {"iwyu-project", "memory",
       "uses a project-owned symbol without directly including its header "
       "(curated symbol->header map)"},
      {"printf-family", "memory",
       "printf-family I/O outside the sanctioned sinks (logger, StrFormat, "
       "TablePrinter, CHECK machinery)"},
      {"adhoc-timing", "memory",
       "direct std::chrono clock reads outside src/obs/ and common/timer.h"},
      {"raw-histogram", "memory",
       "hand-rolled *Histogram type outside src/obs/"},
      {"mem-mmap-deref", "memory",
       "dereferencing MmapFile pages (.data()/.page()/.bytes()/casts) "
       "outside sanctioned store:: readers — unvalidated page touches grow "
       "RSS and bypass the bounded-memory contract"},
      // Concurrency pack — cross-TU lock discipline.
      {"mutex-annotation", "concurrency",
       "raw std synchronization type in an annotated dir; use the "
       "capability-annotated cgkgr::Mutex/SharedMutex/CondVar"},
      {"raw-thread", "concurrency",
       "std::thread outside common/thread_pool — concurrency goes through "
       "cgkgr::ThreadPool"},
      {"conc-lock-order", "concurrency",
       "lock-order inversion: the cross-TU lock graph (observed guard "
       "nesting + CGKGR_ACQUIRED_AFTER/BEFORE declarations) has a cycle"},
      {"conc-guard-access", "concurrency",
       "a CGKGR_GUARDED_BY member accessed in a member function that "
       "neither holds the mutex nor declares CGKGR_REQUIRES on it"},
  };
  return kRules;
}

bool IsKnownRule(const std::string& rule) {
  for (const RuleInfo& info : RuleCatalog()) {
    if (rule == info.name) return true;
  }
  return false;
}

SourceLint::SourceLint(SourceLintOptions options)
    : options_(std::move(options)) {}

void SourceLint::AddSource(std::string path, std::string_view source) {
  files_.push_back(LexSource(std::move(path), source));
}

Status SourceLint::AddFileFromDisk(const std::string& root,
                                   const std::string& relative) {
  const std::string full = root + "/" + relative;
  std::ifstream in(full, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + full);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  AddSource(relative, buffer.str());
  return Status::OK();
}

namespace {

/// Names that produce a Status but are factories/accessors, not failure
/// paths a caller could be dropping.
const std::set<std::string>& StatusNameExclusions() {
  static const std::set<std::string> kExcluded = {
      "OK",      "InvalidArgument", "NotFound",       "AlreadyExists",
      "OutOfRange", "IOError",      "Internal",       "NotImplemented",
      "status",  "Status",          "Result"};
  return kExcluded;
}

/// Collects Status/Result-returning function names declared in a header's
/// token stream: `Status Name(`, `Result<T> Name(`, with optional
/// static/virtual/cgkgr:: prefixes (handled naturally by token scanning).
void CollectStatusFunctions(const LexedFile& lex,
                            std::set<std::string>* names) {
  const std::vector<Token>& toks = lex.tokens;
  for (size_t i = 0; i + 2 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent || toks[i].preprocessor) continue;
    size_t name_at = 0;
    if (toks[i].text == "Status") {
      name_at = i + 1;
    } else if (toks[i].text == "Result" && toks[i + 1].text == "<") {
      // Skip the template argument list.
      int depth = 0;
      size_t j = i + 1;
      for (; j < toks.size(); ++j) {
        if (toks[j].text == "<") ++depth;
        else if (toks[j].text == ">" && --depth == 0) break;
        else if (toks[j].text == ">>" && (depth -= 2) <= 0) break;
        else if (toks[j].text == ";" || toks[j].text == "{") break;
      }
      if (j >= toks.size() || (toks[j].text != ">" && toks[j].text != ">>")) {
        continue;
      }
      name_at = j + 1;
    } else {
      continue;
    }
    if (name_at + 1 >= toks.size()) continue;
    if (toks[name_at].kind != TokKind::kIdent) continue;
    if (toks[name_at + 1].text != "(") continue;
    if (StatusNameExclusions().count(toks[name_at].text) != 0) continue;
    names->insert(toks[name_at].text);
  }
}

/// Collects alias names bound to unordered containers anywhere:
/// `using X = ... unordered_map ... ;` and `typedef ... X;`.
void CollectUnorderedAliases(const LexedFile& lex,
                             std::set<std::string>* names) {
  const std::vector<Token>& toks = lex.tokens;
  for (size_t i = 0; i + 3 < toks.size(); ++i) {
    if (!TokIs(toks, i, "using") || toks[i + 1].kind != TokKind::kIdent ||
        toks[i + 2].text != "=") {
      continue;
    }
    for (size_t j = i + 3; j < toks.size() && toks[j].text != ";"; ++j) {
      if (toks[j].kind == TokKind::kIdent &&
          toks[j].text.rfind("unordered_", 0) == 0) {
        names->insert(toks[i + 1].text);
        break;
      }
    }
  }
  for (size_t i = 0; i + 2 < toks.size(); ++i) {
    if (!TokIs(toks, i, "typedef")) continue;
    bool unordered = false;
    size_t j = i + 1;
    for (; j < toks.size() && toks[j].text != ";"; ++j) {
      if (toks[j].kind == TokKind::kIdent &&
          toks[j].text.rfind("unordered_", 0) == 0) {
        unordered = true;
      }
    }
    if (unordered && j > i + 1 && toks[j - 1].kind == TokKind::kIdent) {
      names->insert(toks[j - 1].text);
    }
  }
}

bool EndsWith(const std::string& text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

SourceLintReport SourceLint::Run() {
  SourceLintReport report;
  RepoModel repo;
  repo.status_functions = options_.extra_status_functions;
  repo.unordered_type_names = {"unordered_map", "unordered_set",
                               "unordered_multimap", "unordered_multiset"};
  for (const LexedFile& lex : files_) {
    report.tokens += static_cast<int64_t>(lex.tokens.size());
    if (EndsWith(lex.path, ".h")) {
      CollectStatusFunctions(lex, &repo.status_functions);
    }
    CollectUnorderedAliases(lex, &repo.unordered_type_names);
  }
  report.files = static_cast<int>(files_.size());

  repo.tus.reserve(files_.size());
  for (const LexedFile& lex : files_) {
    repo.tus.push_back(BuildTranslationUnit(lex));
  }

  internal::Emitter emitter(&options_.rules, &report);
  internal::RunDeterminismPack(repo, &emitter);
  internal::RunMemoryPack(repo, &emitter);
  internal::RunConcurrencyPack(repo, &emitter);

  std::sort(report.findings.begin(), report.findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.message < b.message;
            });
  report.findings.erase(
      std::unique(report.findings.begin(), report.findings.end(),
                  [](const Finding& a, const Finding& b) {
                    return a.file == b.file && a.line == b.line &&
                           a.rule == b.rule && a.message == b.message;
                  }),
      report.findings.end());
  return report;
}

Status LoadBaseline(const std::string& path, std::set<std::string>* entries) {
  entries->clear();
  std::ifstream in(path);
  if (!in) return Status::OK();  // no baseline file = empty baseline
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    const std::string entry(trimmed);
    const size_t colon = entry.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= entry.size()) {
      return Status::InvalidArgument(
          StrFormat("%s:%d: baseline entries are 'path:rule', got '%s'",
                    path.c_str(), lineno, entry.c_str()));
    }
    if (!IsKnownRule(entry.substr(colon + 1))) {
      return Status::InvalidArgument(
          StrFormat("%s:%d: unknown rule in baseline entry '%s'",
                    path.c_str(), lineno, entry.c_str()));
    }
    entries->insert(entry);
  }
  return Status::OK();
}

void ApplyBaseline(const std::set<std::string>& entries,
                   SourceLintReport* report) {
  if (entries.empty()) return;
  std::set<std::string> used;
  std::vector<Finding> kept;
  kept.reserve(report->findings.size());
  for (Finding& finding : report->findings) {
    const std::string key = finding.BaselineKey();
    if (entries.count(key) != 0) {
      used.insert(key);
      ++report->baseline_suppressed;
    } else {
      kept.push_back(std::move(finding));
    }
  }
  report->findings = std::move(kept);
  for (const std::string& entry : entries) {
    if (used.count(entry) == 0) report->stale_baseline.push_back(entry);
  }
}

Status AnalyzeRepo(const std::string& root, const SourceLintOptions& options,
                   SourceLintReport* report) {
  namespace fs = std::filesystem;
  const fs::path src = fs::path(root) / "src";
  std::error_code ec;
  if (!fs::is_directory(src, ec)) {
    return Status::NotFound("no src/ directory under " + root);
  }
  std::vector<std::string> relative_paths;
  for (fs::recursive_directory_iterator it(src, ec), end; it != end;
       it.increment(ec)) {
    if (ec) return Status::IOError("walking " + src.string() + ": " +
                                   ec.message());
    if (!it->is_regular_file()) continue;
    const std::string ext = it->path().extension().string();
    if (ext != ".h" && ext != ".cc" && ext != ".cpp") continue;
    relative_paths.push_back(
        fs::relative(it->path(), fs::path(root), ec).generic_string());
  }
  std::sort(relative_paths.begin(), relative_paths.end());

  SourceLint lint(options);
  for (const std::string& rel : relative_paths) {
    CGKGR_RETURN_NOT_OK(lint.AddFileFromDisk(root, rel));
  }
  *report = lint.Run();
  return Status::OK();
}

}  // namespace analysis
}  // namespace cgkgr
