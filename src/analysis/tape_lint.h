#ifndef CGKGR_ANALYSIS_TAPE_LINT_H_
#define CGKGR_ANALYSIS_TAPE_LINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "autograd/variable.h"
#include "common/status.h"
#include "nn/parameter.h"

namespace cgkgr {
namespace analysis {

/// \file
/// Structural validation of a recorded autograd tape, run *before* any
/// backward pass. The dynamic tape (autograd/variable.h) has no schema:
/// a shape edited after the forward pass, an embedding table that never
/// made it into the loss, or a moved-out buffer all fail silently — the
/// backward pass either crashes late or, worse, trains with frozen
/// parameters. LintTape walks the tape reachable from the loss and checks
/// every edge against the metadata MakeOpResult recorded at op time.
///
/// Enable during training with TrainOptions::lint_tape or the
/// CGKGR_LINT_TAPE environment variable (see models::LintAndBackward);
/// every baseline and CG-KGR train lint-clean under it.

/// Machine-readable category of one tape violation.
enum class TapeViolation {
  /// The loss root is undefined, non-scalar, or does not require grad.
  kNonScalarLoss = 0,
  /// An input's current value shape differs from the shape recorded when
  /// the consuming op ran (post-forward mutation).
  kShapeMismatch,
  /// An input's value storage is empty although the consuming op recorded a
  /// non-empty shape (buffer freed or moved out between forward and
  /// backward).
  kFreedBuffer,
  /// A node's allocated gradient shape differs from its value shape.
  kGradShapeMismatch,
  /// Gradient flow stops at an interior node: inputs were recorded but no
  /// backward function is attached, or a requires-grad input feeds a node
  /// that does not itself require grad.
  kDetachedNode,
  /// An interior node carries a backward function but recorded no inputs —
  /// its backward pass is a silent no-op (gradient sink).
  kOrphanedNode,
  /// A trainable parameter is not reachable from the loss: the optimizer
  /// will keep it silently frozen.
  kUnreachableParameter,
};

/// Stable identifier for a violation category ("shape-mismatch", ...).
const char* TapeViolationName(TapeViolation violation);

/// One lint finding: a violation category anchored at a tape node.
struct TapeLintIssue {
  TapeViolation code;
  /// "MatMul#12"-style label: op name plus DFS discovery index.
  std::string node;
  std::string detail;
};

/// Outcome of one LintTape pass: findings plus tape census counters.
struct TapeLintReport {
  std::vector<TapeLintIssue> issues;
  int64_t nodes = 0;
  int64_t edges = 0;
  int64_t parameters = 0;
  int64_t reachable_parameters = 0;
  /// Parameters skipped by the unreachable-parameter rule because they
  /// matched TapeLintOptions::expected_frozen.
  int64_t frozen_parameters = 0;

  bool clean() const { return issues.empty(); }

  /// Renders the census and per-violation rows as aligned tables
  /// (common/table_printer layout).
  std::string ToTable() const;
};

/// Per-call lint knobs.
struct TapeLintOptions {
  /// Name prefixes of parameters that are *intentionally* not reached by
  /// this step's loss — e.g. layers excluded during a staged-training
  /// warm-up epoch (KGAT's BPRMF-style pretrain leaves its bi-interaction
  /// weights untouched on purpose). Matching parameters are exempt from
  /// the unreachable-parameter rule and counted in
  /// TapeLintReport::frozen_parameters instead. All other rules still
  /// apply to them.
  std::vector<std::string> expected_frozen;
};

/// Walks the tape reachable from `loss` and validates it against the
/// trainable `parameters` (entries must be defined; `names`, when
/// non-empty, must be parallel to `parameters` and is used for reporting).
/// Returns OK iff the tape is clean; otherwise an Internal status whose
/// message summarizes the first violation, with the full list in *report.
Status LintTape(const autograd::Variable& loss,
                const std::vector<autograd::Variable>& parameters,
                const std::vector<std::string>& names, TapeLintReport* report,
                const TapeLintOptions& options = {});

/// Convenience overload over a model's ParameterStore (named reports).
Status LintTape(const autograd::Variable& loss,
                const nn::ParameterStore& store, TapeLintReport* report,
                const TapeLintOptions& options = {});

}  // namespace analysis
}  // namespace cgkgr

#endif  // CGKGR_ANALYSIS_TAPE_LINT_H_
