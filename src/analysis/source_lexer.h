#ifndef CGKGR_ANALYSIS_SOURCE_LEXER_H_
#define CGKGR_ANALYSIS_SOURCE_LEXER_H_

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace cgkgr {
namespace analysis {

/// \file
/// A lightweight C++ lexer for the repo's static analyzer (source_lint.h).
/// It is not a compiler front end: it produces a flat token stream with
/// physical line numbers, a matched-bracket tree, brace-nesting depths, and
/// the preprocessor facts the rule packs need (quoted includes, line
/// splices, directive membership). Comments are consumed — but scanned for
/// suppression markers (`NOLINT(rule)` trailing a line, file-level
/// `lint-repo: allow=rule` / `cgkgr-analyze: allow=rule`) which are
/// recorded on the LexedFile so rules never see or match inside them.

/// Lexical category of one token.
enum class TokKind {
  /// Identifier or keyword (`for`, `new`, `unordered_map`, `mu_`, ...).
  kIdent = 0,
  /// pp-number: integer / floating literal including suffixes.
  kNumber,
  /// String literal, text includes the quotes (raw strings supported).
  kString,
  /// Character literal, text includes the quotes.
  kChar,
  /// Operator or punctuator, maximal munch (`+=`, `::`, `->`, `<<=`, ...).
  kPunct,
};

/// One lexed token. `text` owns its characters so a LexedFile outlives the
/// source buffer it was lexed from.
struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;
  /// 1-based physical line of the token's first character (after splices
  /// the token is attributed to the line it starts on).
  int line = 0;
  /// For `(`/`)`/`[`/`]`/`{`/`}`: index of the matching bracket token, or
  /// -1 when unbalanced. -1 for every other token.
  int match = -1;
  /// Brace-nesting depth *before* this token (the `}` closing a depth-d
  /// block carries depth d).
  int brace_depth = 0;
  /// True when the token is part of a preprocessor directive line.
  bool preprocessor = false;
};

/// A fully lexed source file plus the side tables rules consume.
struct LexedFile {
  /// Repo-relative path with forward slashes ("src/serve/engine.cc").
  std::string path;
  std::vector<Token> tokens;
  /// Quoted `#include "..."` targets, in order of appearance.
  std::vector<std::string> includes;
  /// Rules allowed for the whole file via `lint-repo: allow=rule` or
  /// `cgkgr-analyze: allow=rule` markers ("*" never appears here).
  std::set<std::string> file_allows;
  /// line -> rules suppressed on that line via `NOLINT` / `NOLINT(rule)`
  /// comments; a bare `NOLINT` inserts "*".
  std::map<int, std::set<std::string>> line_allows;
  /// Number of physical lines in the source.
  int num_lines = 0;

  /// True when `rule` on `line` is suppressed by an inline marker.
  bool Suppressed(const std::string& rule, int line) const;
};

/// Lexes `source` (the raw bytes of a C++ file). Never fails: unterminated
/// constructs are closed at end of input, unbalanced brackets keep
/// `match = -1`. `path` should be repo-relative; it is stored verbatim.
LexedFile LexSource(std::string path, std::string_view source);

/// True when token `i` exists and is an identifier with exactly this text.
bool TokIs(const std::vector<Token>& toks, size_t i, std::string_view text);

/// Index of the next token after `i`, skipping none (tokens are dense);
/// returns toks.size() when past the end. Convenience for bounds-safe walks.
inline size_t NextTok(const std::vector<Token>& toks, size_t i) {
  return i + 1 < toks.size() ? i + 1 : toks.size();
}

}  // namespace analysis
}  // namespace cgkgr

#endif  // CGKGR_ANALYSIS_SOURCE_LEXER_H_
