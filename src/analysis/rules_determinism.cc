#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "analysis/source_packs.h"
#include "common/string_util.h"

namespace cgkgr {
namespace analysis {
namespace internal {

/// \file
/// Determinism pack: the static side of the bit-identical-training
/// contract (docs/parallel_training.md). Training results must not depend
/// on hash-table iteration order, float-summation association, or ambient
/// process state; these rules flag the three ways code drifts into that.

namespace {

/// Variables in this TU declared with an unordered container type (or an
/// alias of one). Declaration shape: TypeName[<args>] [&|*|const] name.
std::set<std::string> CollectUnorderedVars(const RepoModel& repo,
                                           const TranslationUnit& tu) {
  std::set<std::string> vars;
  const std::vector<Token>& toks = tu.lex.tokens;
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent ||
        repo.unordered_type_names.count(toks[i].text) == 0) {
      continue;
    }
    size_t j = i + 1;
    // Template argument list.
    if (j < toks.size() && toks[j].text == "<") {
      int depth = 0;
      bool closed = false;
      for (; j < toks.size(); ++j) {
        if (toks[j].text == "<") ++depth;
        else if (toks[j].text == ">") {
          if (--depth == 0) { closed = true; ++j; break; }
        } else if (toks[j].text == ">>") {
          if ((depth -= 2) <= 0) { closed = true; ++j; break; }
        } else if (toks[j].text == ";" || toks[j].text == "{") {
          break;
        }
      }
      if (!closed) continue;
    }
    // Nested-type usage (`unordered_map<...>::iterator`) is not a variable.
    if (j < toks.size() && toks[j].text == "::") continue;
    while (j < toks.size() &&
           (toks[j].text == "&" || toks[j].text == "*" ||
            TokIs(toks, j, "const"))) {
      ++j;
    }
    if (j < toks.size() && toks[j].kind == TokKind::kIdent) {
      vars.insert(toks[j].text);
    }
  }
  return vars;
}

/// Token index just past a loop body: `{...}` block or single statement.
size_t BodyEnd(const std::vector<Token>& toks, size_t body_begin) {
  if (body_begin >= toks.size()) return body_begin;
  if (toks[body_begin].text == "{" && toks[body_begin].match > 0) {
    return static_cast<size_t>(toks[body_begin].match);
  }
  size_t j = body_begin;
  while (j < toks.size() && toks[j].text != ";") ++j;
  return j;
}

bool IsCompoundAssign(const Token& tok) {
  const std::string& t = tok.text;
  return t == "+=" || t == "-=" || t == "*=" || t == "/=" || t == "|=" ||
         t == "&=" || t == "^=";
}

/// det-unordered-iter: range-for over an unordered container whose body
/// feeds a reduction (compound assignment, accumulate) or ordered output
/// (push_back/emplace_back, stream insertion).
void UnorderedIterRule(const RepoModel& repo, const TranslationUnit& tu,
                       Emitter* emitter) {
  const std::vector<Token>& toks = tu.lex.tokens;
  const std::set<std::string> unordered_vars = CollectUnorderedVars(repo, tu);
  for (size_t i = 0; i + 2 < toks.size(); ++i) {
    if (!TokIs(toks, i, "for") || toks[i + 1].text != "(" ||
        toks[i + 1].match < 0) {
      continue;
    }
    const size_t open = i + 1;
    const size_t close = static_cast<size_t>(toks[open].match);
    // Range-for: a single `:` at the top paren level (skip `::`).
    size_t colon = 0;
    int depth = 0;
    for (size_t j = open + 1; j < close; ++j) {
      const std::string& t = toks[j].text;
      if (t == "(" || t == "[" || t == "{") ++depth;
      else if (t == ")" || t == "]" || t == "}") --depth;
      else if (t == ":" && depth == 0) { colon = j; break; }
      else if (t == ";" && depth == 0) break;  // classic for
    }
    if (colon == 0) continue;
    // Does the range expression name an unordered container?
    bool unordered = false;
    std::string range_name;
    for (size_t j = colon + 1; j < close; ++j) {
      if (toks[j].kind != TokKind::kIdent) continue;
      if (unordered_vars.count(toks[j].text) != 0 ||
          repo.unordered_type_names.count(toks[j].text) != 0) {
        unordered = true;
        range_name = toks[j].text;
        break;
      }
    }
    if (!unordered) continue;
    // Does the body feed a reduction or ordered output?
    const size_t body_begin = close + 1;
    const size_t body_end = BodyEnd(toks, body_begin);
    const char* sink = nullptr;
    size_t sink_at = 0;
    for (size_t j = body_begin; j < body_end && sink == nullptr; ++j) {
      if (IsCompoundAssign(toks[j])) {
        sink = "a compound-assignment reduction";
        sink_at = j;
      } else if (toks[j].text == "<<") {
        sink = "stream output";
        sink_at = j;
      } else if (toks[j].kind == TokKind::kIdent &&
                 (toks[j].text == "push_back" ||
                  toks[j].text == "emplace_back" ||
                  toks[j].text == "accumulate")) {
        sink = "ordered-output collection";
        sink_at = j;
      }
    }
    if (sink == nullptr) continue;
    emitter->Emit(
        tu.lex, toks[i].line, "det-unordered-iter",
        StrFormat("iterating unordered container '%s' feeds %s (line %d); "
                  "iteration order is unspecified and breaks the "
                  "bit-identity contract — iterate a sorted copy or use an "
                  "ordered container",
                  range_name.c_str(), sink, toks[sink_at].line));
  }
}

/// det-naive-float-sum, part 1: any std::accumulate call.
void AccumulateRule(const TranslationUnit& tu, Emitter* emitter) {
  const std::vector<Token>& toks = tu.lex.tokens;
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind == TokKind::kIdent && toks[i].text == "accumulate" &&
        toks[i + 1].text == "(" &&
        (i == 0 || (toks[i - 1].text != "." && toks[i - 1].text != "->"))) {
      emitter->Emit(tu.lex, toks[i].line, "det-naive-float-sum",
                    "std::accumulate hides the association of a float "
                    "reduction; sum through tensor::Sum (pairwise cascade) "
                    "or an explicit double accumulator");
    }
  }
}

/// det-naive-float-sum, part 2: `float x = <constant>;` followed in the
/// same scope by a loop whose body does `x += ...`. The sanctioned forms
/// are a double accumulator (SegmentSoftmax-style), tensor::Sum's cascade,
/// and the blocked-accumulator pattern the vectorized kernels use: a float
/// register seeded from *live data* (`float acc = c_row[j];` ... `acc +=`),
/// which merely continues an existing element's fixed-association sum and
/// writes it back, so no new ordering freedom is introduced. Seeding from
/// any expression that references an identifier counts as live data;
/// zero or constant-literal seeds start a fresh order-sensitive reduction
/// and stay flagged.
void NaiveFloatSumRule(const TranslationUnit& tu, Emitter* emitter) {
  const std::vector<Token>& toks = tu.lex.tokens;
  for (size_t i = 0; i + 3 < toks.size(); ++i) {
    if (!TokIs(toks, i, "float")) continue;
    if (toks[i + 1].kind != TokKind::kIdent || toks[i + 2].text != "=") {
      continue;
    }
    // Walk the initializer up to the terminating ';' (single-declarator
    // form only, matching the accumulator idiom).
    size_t init_end = i + 3;
    bool seeded_from_live_data = false;
    int depth = 0;
    for (; init_end < toks.size(); ++init_end) {
      const std::string& t = toks[init_end].text;
      if (t == "(" || t == "[" || t == "{") ++depth;
      else if (t == ")" || t == "]" || t == "}") --depth;
      else if (t == ";" && depth == 0) break;
      else if (t == "," && depth == 0) { init_end = toks.size(); break; }
      if (toks[init_end].kind == TokKind::kIdent) {
        seeded_from_live_data = true;  // sanctioned blocked accumulator
      }
    }
    if (init_end >= toks.size() || init_end == i + 3) continue;
    if (seeded_from_live_data) continue;
    const std::string name = toks[i + 1].text;
    const int scope_depth = toks[i].brace_depth;
    // Scan the rest of the declaring scope for loops accumulating into it.
    for (size_t j = init_end + 1; j < toks.size(); ++j) {
      if (toks[j].text == "}" && toks[j].brace_depth == scope_depth) break;
      if (!TokIs(toks, j, "for") && !TokIs(toks, j, "while")) continue;
      if (j + 1 >= toks.size() || toks[j + 1].text != "(" ||
          toks[j + 1].match < 0) {
        continue;
      }
      const size_t body_begin = static_cast<size_t>(toks[j + 1].match) + 1;
      const size_t body_end = BodyEnd(toks, body_begin);
      for (size_t k = body_begin; k + 1 < body_end; ++k) {
        if (toks[k].kind == TokKind::kIdent && toks[k].text == name &&
            toks[k + 1].text == "+=" &&
            (k == 0 ||
             (toks[k - 1].text != "." && toks[k - 1].text != "->"))) {
          emitter->Emit(
              tu.lex, toks[k].line, "det-naive-float-sum",
              StrFormat("serial float accumulator '%s' (declared line %d): "
                        "single-precision serial addition drifts with order "
                        "and length; accumulate in double or use tensor::Sum",
                        name.c_str(), toks[i].line));
          break;
        }
      }
    }
  }
}

/// det-ambient-rng: ambient randomness / wall-clock entropy outside the
/// seeded RNG substrate (common/rng.*).
void AmbientRngRule(const TranslationUnit& tu, Emitter* emitter) {
  const std::string& path = tu.lex.path;
  if (PathStartsWith(path, "src/common/rng")) return;
  const std::vector<Token>& toks = tu.lex.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    const std::string& t = toks[i].text;
    const bool qualified_std =
        i >= 2 && toks[i - 1].text == "::" && TokIs(toks, i - 2, "std");
    const bool member_access =
        i > 0 && (toks[i - 1].text == "." || toks[i - 1].text == "->");
    if ((t == "random_device" || t == "mt19937" || t == "mt19937_64" ||
         t == "default_random_engine" || t == "minstd_rand") &&
        !member_access) {
      emitter->Emit(tu.lex, toks[i].line, "det-ambient-rng",
                    StrFormat("std::%s outside common/rng: unseeded entropy "
                              "makes runs unreproducible; fork a cgkgr::Rng "
                              "instead",
                              t.c_str()));
      continue;
    }
    if ((t == "rand" || t == "srand" || t == "time") && !member_access &&
        !(i > 0 && toks[i - 1].text == "::" && !qualified_std) &&
        TokIs(toks, i + 1, "(")) {
      emitter->Emit(
          tu.lex, toks[i].line, "det-ambient-rng",
          StrFormat("%s() outside common/rng: ambient process state in a "
                    "result path breaks replayability; use cgkgr::Rng / "
                    "WallTimer",
                    t.c_str()));
    }
  }
}

}  // namespace

void RunDeterminismPack(const RepoModel& repo, Emitter* emitter) {
  for (const TranslationUnit& tu : repo.tus) {
    if (!InSrc(tu.lex.path)) continue;
    if (emitter->Enabled("det-unordered-iter")) {
      UnorderedIterRule(repo, tu, emitter);
    }
    if (emitter->Enabled("det-naive-float-sum")) {
      AccumulateRule(tu, emitter);
      NaiveFloatSumRule(tu, emitter);
    }
    if (emitter->Enabled("det-ambient-rng")) AmbientRngRule(tu, emitter);
  }
}

}  // namespace internal
}  // namespace analysis
}  // namespace cgkgr
