#include "analysis/source_lexer.h"

#include <cctype>
#include <cstddef>
#include <utility>

namespace cgkgr {
namespace analysis {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

/// Cursor over the raw source that is transparent to line splices
/// (backslash-newline), the first phase of C++ translation. Every Get()
/// advance keeps the physical line counter honest, so tokens report the
/// line their first character sits on even across spliced macro bodies.
class Cursor {
 public:
  explicit Cursor(std::string_view text) : text_(text) { SkipSplices(); }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return AtEnd() ? '\0' : text_[pos_]; }
  char PeekAt(size_t ahead) const {
    // Splice-transparent lookahead: walk forward skipping backslash-newline.
    size_t p = pos_;
    size_t left = ahead;
    while (p < text_.size()) {
      if (text_[p] == '\\' && p + 1 < text_.size() && IsNewlineAt(p + 1)) {
        p += SpliceLenAt(p);
        continue;
      }
      if (left == 0) return text_[p];
      --left;
      ++p;
    }
    return '\0';
  }

  /// Consumes and returns the current character.
  char Get() {
    const char c = text_[pos_];
    if (c == '\n') {
      ++line_;
      ++logical_line_;
    }
    ++pos_;
    SkipSplices();
    return c;
  }

  /// Consumes the current character without splice skipping (for raw
  /// strings, where splices are literal content).
  char GetRaw() {
    const char c = text_[pos_];
    if (c == '\n') {
      ++line_;
      ++logical_line_;
    }
    ++pos_;
    return c;
  }

  int line() const { return line_; }
  /// Advances only on *real* newlines, not splices: a spliced preprocessor
  /// directive stays on one logical line.
  int logical_line() const { return logical_line_; }

 private:
  bool IsNewlineAt(size_t p) const {
    return text_[p] == '\n' ||
           (text_[p] == '\r' && p + 1 < text_.size() && text_[p + 1] == '\n');
  }
  size_t SpliceLenAt(size_t p) const {
    // p points at the backslash.
    return text_[p + 1] == '\r' ? 3 : 2;
  }
  void SkipSplices() {
    while (pos_ < text_.size() && text_[pos_] == '\\' &&
           pos_ + 1 < text_.size() && IsNewlineAt(pos_ + 1)) {
      const size_t len = SpliceLenAt(pos_);
      pos_ += len;
      ++line_;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
  int line_ = 1;
  int logical_line_ = 1;
};

/// Multi-character punctuators, longest first within each leading char
/// (maximal munch). Single characters fall through.
const char* const kPuncts3[] = {"<<=", ">>=", "...", "->*", "<=>"};
const char* const kPuncts2[] = {"::", "->", "++", "--", "<<", ">>", "<=",
                                ">=", "==", "!=", "&&", "||", "+=", "-=",
                                "*=", "/=", "%=", "&=", "|=", "^=", "##"};

/// Scans comment text for suppression markers and records them.
void ScanCommentForMarkers(const std::string& comment, int line,
                           LexedFile* out) {
  // File-level: "lint-repo: allow=rule" (legacy) or
  // "cgkgr-analyze: allow=rule".
  for (const char* prefix : {"lint-repo: allow=", "cgkgr-analyze: allow="}) {
    size_t at = 0;
    while ((at = comment.find(prefix, at)) != std::string::npos) {
      at += std::string_view(prefix).size();
      std::string rule;
      while (at < comment.size() &&
             (IsIdentChar(comment[at]) || comment[at] == '-')) {
        rule.push_back(comment[at++]);
      }
      if (!rule.empty()) out->file_allows.insert(rule);
    }
  }
  // Line-level: NOLINT or NOLINT(rule-a,rule-b).
  size_t at = 0;
  while ((at = comment.find("NOLINT", at)) != std::string::npos) {
    at += 6;
    if (at < comment.size() && comment[at] == '(') {
      ++at;
      std::string rule;
      while (at < comment.size() && comment[at] != ')') {
        if (IsIdentChar(comment[at]) || comment[at] == '-') {
          rule.push_back(comment[at]);
        } else if (comment[at] == ',') {
          if (!rule.empty()) out->line_allows[line].insert(rule);
          rule.clear();
        }
        ++at;
      }
      if (!rule.empty()) out->line_allows[line].insert(rule);
    } else {
      out->line_allows[line].insert("*");
    }
  }
}

}  // namespace

bool LexedFile::Suppressed(const std::string& rule, int line) const {
  if (file_allows.count(rule) != 0) return true;
  auto it = line_allows.find(line);
  if (it == line_allows.end()) return false;
  return it->second.count(rule) != 0 || it->second.count("*") != 0;
}

bool TokIs(const std::vector<Token>& toks, size_t i, std::string_view text) {
  return i < toks.size() && toks[i].text == text;
}

LexedFile LexSource(std::string path, std::string_view source) {
  LexedFile out;
  out.path = std::move(path);
  Cursor cur(source);
  bool in_directive = false;
  bool line_has_token = false;  // any token yet on the current logical line?
  int last_logical_line = 1;

  auto push = [&](TokKind kind, std::string text, int line) {
    Token tok;
    tok.kind = kind;
    tok.text = std::move(text);
    tok.line = line;
    tok.preprocessor = in_directive;
    out.tokens.push_back(std::move(tok));
    line_has_token = true;
  };

  while (!cur.AtEnd()) {
    // Track logical line ends: a real newline terminates a directive, a
    // splice does not (the cursor consumes splices transparently but only
    // counts real newlines in logical_line()).
    if (cur.logical_line() != last_logical_line) {
      last_logical_line = cur.logical_line();
      in_directive = false;
      line_has_token = false;
    }
    const char c = cur.Peek();
    if (c == '\n' || c == '\r' || c == ' ' || c == '\t' || c == '\f' ||
        c == '\v') {
      cur.Get();
      continue;
    }
    const int line = cur.line();
    // Comments.
    if (c == '/' && cur.PeekAt(1) == '/') {
      std::string comment;
      while (!cur.AtEnd() && cur.Peek() != '\n') comment.push_back(cur.Get());
      ScanCommentForMarkers(comment, line, &out);
      continue;
    }
    if (c == '/' && cur.PeekAt(1) == '*') {
      cur.Get();
      cur.Get();
      std::string comment;
      while (!cur.AtEnd()) {
        if (cur.Peek() == '*' && cur.PeekAt(1) == '/') {
          cur.Get();
          cur.Get();
          break;
        }
        comment.push_back(cur.Get());
      }
      // Markers in a block comment apply to the line the comment started on.
      ScanCommentForMarkers(comment, line, &out);
      continue;
    }
    // Preprocessor directive: '#' as the first token of a logical line.
    if (c == '#' && !line_has_token) {
      in_directive = true;
      // fall through to punctuation handling below
    }
    // Raw string literal R"delim( ... )delim".
    if (c == 'R' && cur.PeekAt(1) == '"') {
      std::string text;
      text.push_back(cur.Get());  // R
      text.push_back(cur.Get());  // "
      std::string delim;
      while (!cur.AtEnd() && cur.Peek() != '(') delim.push_back(cur.Get());
      if (!cur.AtEnd()) delim.push_back(cur.Get());  // (
      text += delim;
      const std::string closer = ")" + delim.substr(0, delim.size() - 1) + "\"";
      std::string body;
      while (!cur.AtEnd()) {
        body.push_back(cur.GetRaw());
        if (body.size() >= closer.size() &&
            body.compare(body.size() - closer.size(), closer.size(), closer) ==
                0) {
          break;
        }
      }
      push(TokKind::kString, text + body, line);
      continue;
    }
    // String / char literal (with escape handling).
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::string text;
      text.push_back(cur.Get());
      while (!cur.AtEnd()) {
        const char d = cur.Get();
        text.push_back(d);
        if (d == '\\' && !cur.AtEnd()) {
          text.push_back(cur.Get());
          continue;
        }
        if (d == quote) break;
        if (d == '\n') break;  // unterminated; resynchronize at newline
      }
      push(quote == '"' ? TokKind::kString : TokKind::kChar, std::move(text),
           line);
      continue;
    }
    // Identifier / keyword.
    if (IsIdentStart(c)) {
      std::string text;
      while (!cur.AtEnd() && IsIdentChar(cur.Peek())) text.push_back(cur.Get());
      push(TokKind::kIdent, std::move(text), line);
      continue;
    }
    // pp-number: starts with a digit, or '.' followed by a digit.
    if (IsDigit(c) || (c == '.' && IsDigit(cur.PeekAt(1)))) {
      std::string text;
      text.push_back(cur.Get());
      while (!cur.AtEnd()) {
        const char d = cur.Peek();
        if (IsIdentChar(d) || d == '.' || d == '\'') {
          text.push_back(cur.Get());
          // Exponent signs: 1e+5, 0x1p-3.
          if ((d == 'e' || d == 'E' || d == 'p' || d == 'P') &&
              (cur.Peek() == '+' || cur.Peek() == '-')) {
            text.push_back(cur.Get());
          }
          continue;
        }
        break;
      }
      push(TokKind::kNumber, std::move(text), line);
      continue;
    }
    // Punctuation, maximal munch.
    {
      std::string text;
      bool matched = false;
      for (const char* p : kPuncts3) {
        if (c == p[0] && cur.PeekAt(1) == p[1] && cur.PeekAt(2) == p[2]) {
          cur.Get();
          cur.Get();
          cur.Get();
          text = p;
          matched = true;
          break;
        }
      }
      if (!matched) {
        for (const char* p : kPuncts2) {
          if (c == p[0] && cur.PeekAt(1) == p[1]) {
            cur.Get();
            cur.Get();
            text = p;
            matched = true;
            break;
          }
        }
      }
      if (!matched) text.push_back(cur.Get());
      push(TokKind::kPunct, std::move(text), line);
      continue;
    }
  }
  out.num_lines = cur.line();

  // Bracket matching + brace depth. Angle brackets are not matched (template
  // ambiguity); rules that need template arguments count nesting locally.
  {
    std::vector<size_t> stack;
    int depth = 0;
    for (size_t i = 0; i < out.tokens.size(); ++i) {
      Token& tok = out.tokens[i];
      tok.brace_depth = depth;
      if (tok.kind != TokKind::kPunct) continue;
      const std::string& t = tok.text;
      if (t == "(" || t == "[" || t == "{") {
        if (t == "{") {
          ++depth;
          tok.brace_depth = depth - 1;  // depth *before* the brace
        }
        stack.push_back(i);
      } else if (t == ")" || t == "]" || t == "}") {
        if (t == "}") {
          depth = depth > 0 ? depth - 1 : 0;
          tok.brace_depth = depth + 1;  // the '}' belongs to the open block
        }
        const char open = t == ")" ? '(' : (t == "]" ? '[' : '{');
        // Pop to the nearest matching opener, tolerating imbalance.
        while (!stack.empty() &&
               out.tokens[stack.back()].text[0] != open) {
          stack.pop_back();
        }
        if (!stack.empty()) {
          out.tokens[stack.back()].match = static_cast<int>(i);
          tok.match = static_cast<int>(stack.back());
          stack.pop_back();
        }
      }
    }
  }

  // Quoted includes.
  for (size_t i = 0; i + 2 < out.tokens.size(); ++i) {
    if (out.tokens[i].preprocessor && out.tokens[i].text == "#" &&
        TokIs(out.tokens, i + 1, "include") &&
        out.tokens[i + 2].kind == TokKind::kString) {
      const std::string& lit = out.tokens[i + 2].text;
      if (lit.size() >= 2 && lit.front() == '"' && lit.back() == '"') {
        out.includes.push_back(lit.substr(1, lit.size() - 2));
      }
    }
  }
  return out;
}

}  // namespace analysis
}  // namespace cgkgr
