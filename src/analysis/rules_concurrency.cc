#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analysis/source_packs.h"
#include "common/string_util.h"

namespace cgkgr {
namespace analysis {
namespace internal {

/// \file
/// Concurrency pack. mutex-annotation and raw-thread are direct ports of
/// the retired regex rules; conc-lock-order and conc-guard-access are the
/// cross-TU half of the thread-safety story: clang's -Wthread-safety
/// checks each annotated TU in isolation, these rules assemble a
/// repo-wide lock graph from CGKGR_GUARDED_BY / CGKGR_ACQUIRED_AFTER
/// annotations plus observed MutexLock nesting and check it globally.

namespace {

bool IsStdQualified(const std::vector<Token>& toks, size_t i) {
  return i >= 2 && toks[i - 1].text == "::" && TokIs(toks, i - 2, "std");
}

/// mutex-annotation: raw std synchronization types in the annotated
/// directories (src/common, src/serve). Lock-protected state there must
/// use the capability-annotated cgkgr wrappers so -Wthread-safety and the
/// rules below can see it.
void MutexAnnotationRule(const TranslationUnit& tu, Emitter* emitter) {
  const std::string& path = tu.lex.path;
  const bool annotated = PathStartsWith(path, "src/common/") ||
                         PathStartsWith(path, "src/serve/");
  if (!annotated || path == "src/common/mutex.h") return;
  static const std::set<std::string> kRawSync = {
      "mutex", "shared_mutex", "recursive_mutex", "condition_variable",
      "condition_variable_any"};
  const std::vector<Token>& toks = tu.lex.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind == TokKind::kIdent && kRawSync.count(toks[i].text) != 0 &&
        IsStdQualified(toks, i)) {
      emitter->Emit(tu.lex, toks[i].line, "mutex-annotation",
                    "raw std synchronization type in an annotated dir; use "
                    "the capability-annotated cgkgr::Mutex/SharedMutex/"
                    "CondVar (common/mutex.h)");
    }
  }
}

/// raw-thread: std::thread outside the pool implementation.
void RawThreadRule(const TranslationUnit& tu, Emitter* emitter) {
  const std::string& path = tu.lex.path;
  if (path == "src/common/thread_pool.h" ||
      path == "src/common/thread_pool.cc") {
    return;
  }
  const std::vector<Token>& toks = tu.lex.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind == TokKind::kIdent && toks[i].text == "thread" &&
        IsStdQualified(toks, i)) {
      emitter->Emit(tu.lex, toks[i].line, "raw-thread",
                    "raw std::thread outside common/thread_pool; use "
                    "cgkgr::ThreadPool so lane accounting and pool "
                    "metrics stay accurate");
    }
  }
}

/// One RAII guard scope observed in a function body.
struct GuardScope {
  /// MutexLastComponent of the guard's mutex argument.
  std::string lock;
  /// Token span over which the guard is held: [begin, end).
  size_t begin = 0;
  size_t end = 0;
  int line = 0;
};

/// Finds MutexLock/ReaderMutexLock/WriterMutexLock RAII scopes inside a
/// function body span. A guard is held from its declaration to the end of
/// its enclosing brace scope.
std::vector<GuardScope> FindGuardScopes(const std::vector<Token>& toks,
                                        const FunctionInfo& fn) {
  std::vector<GuardScope> scopes;
  for (size_t i = fn.body_begin + 1; i + 2 < fn.body_end; ++i) {
    const Token& tok = toks[i];
    if (tok.kind != TokKind::kIdent ||
        (tok.text != "MutexLock" && tok.text != "ReaderMutexLock" &&
         tok.text != "WriterMutexLock")) {
      continue;
    }
    if (toks[i + 1].kind != TokKind::kIdent) continue;  // guard variable name
    if (toks[i + 2].text != "(" || toks[i + 2].match < 0) continue;
    const size_t close = static_cast<size_t>(toks[i + 2].match);
    GuardScope scope;
    scope.lock = MutexLastComponent(NormalizeMutexExpr(toks, i + 3, close));
    scope.begin = close + 1;
    scope.line = tok.line;
    // Enclosing scope end: the `}` that closes the block the guard lives
    // in (bounded by the function body).
    int depth = 0;
    size_t j = close + 1;
    for (; j < fn.body_end; ++j) {
      if (toks[j].text == "{") {
        ++depth;
      } else if (toks[j].text == "}") {
        if (depth == 0) break;
        --depth;
      }
    }
    scope.end = j;
    scopes.push_back(std::move(scope));
  }
  return scopes;
}

/// Cross-TU name tables assembled from every class definition.
struct LockWorld {
  /// mutex last-component -> class names declaring a mutex of that name.
  std::map<std::string, std::set<std::string>> mutex_owners;
  /// class name -> guarded members.
  std::map<std::string, std::vector<GuardedMember>> guarded;
  /// (class name, method name) -> union of annotated declarations.
  std::map<std::pair<std::string, std::string>, MethodDecl> decls;
};

LockWorld BuildLockWorld(const RepoModel& repo) {
  LockWorld world;
  for (const TranslationUnit& tu : repo.tus) {
    for (const ClassInfo& cls : tu.classes) {
      for (const std::string& mutex : cls.mutexes) {
        world.mutex_owners[mutex].insert(cls.name);
      }
      for (const GuardedMember& member : cls.guarded) {
        world.guarded[cls.name].push_back(member);
      }
    }
    for (const MethodDecl& decl : tu.method_decls) {
      MethodDecl& merged = world.decls[{decl.class_name, decl.name}];
      merged.class_name = decl.class_name;
      merged.name = decl.name;
      merged.no_thread_safety_analysis |= decl.no_thread_safety_analysis;
      for (const std::string& lock : decl.requires_locks) {
        merged.requires_locks.push_back(lock);
      }
    }
  }
  return world;
}

/// Global lock identity: "Class::name" when the owning class is known
/// (the function's own class first, then a unique global owner), else the
/// bare name. Consistent naming is what lets edges from different TUs
/// connect in the graph.
std::string LockIdentity(const LockWorld& world, const std::string& own_class,
                         const std::string& lock) {
  if (!own_class.empty()) {
    auto it = world.mutex_owners.find(lock);
    if (it != world.mutex_owners.end() && it->second.count(own_class) != 0) {
      return own_class + "::" + lock;
    }
  }
  auto it = world.mutex_owners.find(lock);
  if (it != world.mutex_owners.end() && it->second.size() == 1) {
    return *it->second.begin() + "::" + lock;
  }
  return lock;
}

/// The class a function definition belongs to ("" for free functions).
std::string FunctionClass(const TranslationUnit& tu, const FunctionInfo& fn) {
  if (!fn.qualifier.empty()) return fn.qualifier;
  if (fn.enclosing_class >= 0) {
    return tu.classes[static_cast<size_t>(fn.enclosing_class)].name;
  }
  return "";
}

/// One acquired-before edge in the lock graph, with the site it was
/// observed or declared at.
struct LockEdge {
  std::string from;  // acquired first
  std::string to;    // acquired while `from` is held
  const LexedFile* lex = nullptr;
  int line = 0;
};

/// conc-lock-order: assemble the graph, then flag every edge that closes a
/// cycle. Both sides of an inversion report at their own site, so the
/// finding points at each conflicting acquisition.
void LockOrderRule(const RepoModel& repo, const LockWorld& world,
                   Emitter* emitter) {
  std::vector<LockEdge> edges;
  for (const TranslationUnit& tu : repo.tus) {
    if (!InSrc(tu.lex.path)) continue;
    for (const ClassInfo& cls : tu.classes) {
      for (const DeclaredLockOrder& order : cls.declared_order) {
        LockEdge edge;
        edge.from = LockIdentity(world, cls.name, order.before);
        edge.to = LockIdentity(world, cls.name, order.after);
        edge.lex = &tu.lex;
        edge.line = order.line;
        if (edge.from != edge.to) edges.push_back(std::move(edge));
      }
    }
    for (const FunctionInfo& fn : tu.functions) {
      const std::string own_class = FunctionClass(tu, fn);
      const std::vector<GuardScope> scopes =
          FindGuardScopes(tu.lex.tokens, fn);
      for (size_t outer = 0; outer < scopes.size(); ++outer) {
        for (size_t inner = outer + 1; inner < scopes.size(); ++inner) {
          if (scopes[inner].begin >= scopes[outer].end) continue;
          LockEdge edge;
          edge.from = LockIdentity(world, own_class, scopes[outer].lock);
          edge.to = LockIdentity(world, own_class, scopes[inner].lock);
          edge.lex = &tu.lex;
          edge.line = scopes[inner].line;
          if (edge.from != edge.to) edges.push_back(std::move(edge));
        }
      }
    }
  }

  std::map<std::string, std::set<std::string>> adjacency;
  for (const LockEdge& edge : edges) {
    adjacency[edge.from].insert(edge.to);
  }
  // Edge (u -> v) closes a cycle iff u is reachable from v.
  auto reaches = [&adjacency](const std::string& from,
                              const std::string& target) {
    std::set<std::string> visited;
    std::vector<std::string> stack = {from};
    while (!stack.empty()) {
      const std::string node = stack.back();
      stack.pop_back();
      if (node == target) return true;
      if (!visited.insert(node).second) continue;
      auto it = adjacency.find(node);
      if (it == adjacency.end()) continue;
      for (const std::string& next : it->second) stack.push_back(next);
    }
    return false;
  };
  for (const LockEdge& edge : edges) {
    if (!reaches(edge.to, edge.from)) continue;
    emitter->Emit(
        *edge.lex, edge.line, "conc-lock-order",
        StrFormat("lock-order inversion: '%s' is acquired/ordered before "
                  "'%s' here, but the repo-wide lock graph also orders '%s' "
                  "before '%s' — pick one order and declare it with "
                  "CGKGR_ACQUIRED_AFTER",
                  edge.from.c_str(), edge.to.c_str(), edge.to.c_str(),
                  edge.from.c_str()));
  }
}

/// conc-guard-access: a CGKGR_GUARDED_BY member accessed in a member
/// function of its class that neither holds the guard's mutex (no
/// enclosing MutexLock scope) nor declares CGKGR_REQUIRES on it. Works on
/// out-of-line definitions in .cc files whose class lives in a header —
/// the per-TU clang pass cannot see those annotations; this rule can.
void GuardAccessRule(const RepoModel& repo, const LockWorld& world,
                     Emitter* emitter) {
  for (const TranslationUnit& tu : repo.tus) {
    if (!InSrc(tu.lex.path)) continue;
    const std::vector<Token>& toks = tu.lex.tokens;
    for (const FunctionInfo& fn : tu.functions) {
      if (fn.no_thread_safety_analysis || fn.is_ctor_or_dtor) continue;
      const std::string own_class = FunctionClass(tu, fn);
      if (own_class.empty()) continue;
      auto guarded_it = world.guarded.find(own_class);
      if (guarded_it == world.guarded.end()) continue;

      std::set<std::string> held;
      for (const std::string& lock : fn.requires_locks) held.insert(lock);
      auto decl_it = world.decls.find({own_class, fn.name});
      if (decl_it != world.decls.end()) {
        if (decl_it->second.no_thread_safety_analysis) continue;
        for (const std::string& lock : decl_it->second.requires_locks) {
          held.insert(lock);
        }
      }
      const std::vector<GuardScope> scopes = FindGuardScopes(toks, fn);

      std::set<std::string> reported;
      for (size_t i = fn.body_begin + 1; i < fn.body_end; ++i) {
        if (toks[i].kind != TokKind::kIdent) continue;
        const GuardedMember* member = nullptr;
        for (const GuardedMember& candidate : guarded_it->second) {
          if (candidate.name == toks[i].text) {
            member = &candidate;
            break;
          }
        }
        if (member == nullptr || reported.count(member->name) != 0) continue;
        // Only accesses to *our* member: bare or through `this->`.
        if (i > 0 && (toks[i - 1].text == "." || toks[i - 1].text == "->") &&
            !(i >= 2 && TokIs(toks, i - 2, "this"))) {
          continue;
        }
        if (i > 0 && toks[i - 1].text == "::") continue;
        const std::string lock = MutexLastComponent(member->mutex_expr);
        if (held.count(lock) != 0) continue;
        bool in_scope = false;
        for (const GuardScope& scope : scopes) {
          if (scope.lock == lock && i >= scope.begin && i < scope.end) {
            in_scope = true;
            break;
          }
        }
        if (in_scope) continue;
        reported.insert(member->name);
        emitter->Emit(
            tu.lex, toks[i].line, "conc-guard-access",
            StrFormat("'%s::%s' is CGKGR_GUARDED_BY(%s) but accessed in "
                      "%s() without holding it — take a MutexLock or "
                      "annotate the function with CGKGR_REQUIRES(%s)",
                      own_class.c_str(), member->name.c_str(),
                      member->mutex_expr.c_str(), fn.name.c_str(),
                      member->mutex_expr.c_str()));
      }
    }
  }
}

}  // namespace

void RunConcurrencyPack(const RepoModel& repo, Emitter* emitter) {
  for (const TranslationUnit& tu : repo.tus) {
    if (!InSrc(tu.lex.path)) continue;
    if (emitter->Enabled("mutex-annotation")) MutexAnnotationRule(tu, emitter);
    if (emitter->Enabled("raw-thread")) RawThreadRule(tu, emitter);
  }
  const LockWorld world = BuildLockWorld(repo);
  if (emitter->Enabled("conc-lock-order")) {
    LockOrderRule(repo, world, emitter);
  }
  if (emitter->Enabled("conc-guard-access")) {
    GuardAccessRule(repo, world, emitter);
  }
}

}  // namespace internal
}  // namespace analysis
}  // namespace cgkgr
