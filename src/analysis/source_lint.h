#ifndef CGKGR_ANALYSIS_SOURCE_LINT_H_
#define CGKGR_ANALYSIS_SOURCE_LINT_H_

#include <cstdint>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/source_model.h"
#include "common/status.h"

namespace cgkgr {
namespace analysis {

/// \file
/// analysis::SourceLint — the repo's static analyzer. A lightweight C++
/// lexer and translation-unit model (source_lexer.h, source_model.h) feed
/// three rule packs that mechanize the contracts the runtime test suite
/// enforces dynamically:
///
///   determinism   unordered-container iteration feeding reductions, naive
///                 float accumulation outside the sanctioned tensor::Sum /
///                 cascade helpers, ambient randomness outside common/rng —
///                 the static side of the bit-identical-training contract.
///   memory        naked new, raw ofstream outside ckpt, discarded Status
///                 (multi-line aware), project include-what-you-use, mmap
///                 page access outside store:: readers, plus the telemetry
///                 hygiene rules (printf/timing/histogram).
///   concurrency   CGKGR_GUARDED_BY-family annotations parsed into a
///                 cross-TU lock graph: lock-order inversions and guarded
///                 members accessed without their mutex — complementing
///                 clang's per-TU -Wthread-safety.
///
/// Driven by tools/analyzer.cc (`cgkgr_analyze`, the `repo_analyze` ctest)
/// with a checked-in suppression baseline; see docs/static_analysis.md for
/// the rule catalog and suppression syntax.

/// One analyzer finding, anchored at file:line with a stable rule id.
struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;

  /// "path:line: [rule] message" — the printed form.
  std::string ToString() const;
  /// "path:rule" — the suppression-baseline key (line numbers churn; a
  /// baseline entry suppresses a rule for a whole file).
  std::string BaselineKey() const;
};

/// Catalog entry for one rule.
struct RuleInfo {
  const char* name;
  /// "determinism", "memory", or "concurrency".
  const char* pack;
  const char* summary;
};

/// Every rule the analyzer knows, grouped by pack, stable order.
const std::vector<RuleInfo>& RuleCatalog();

/// True when `rule` names a catalog rule.
bool IsKnownRule(const std::string& rule);

struct SourceLintOptions {
  /// When non-empty, only these rules run (unknown names are ignored).
  std::set<std::string> rules;
  /// Extra Status/Result-returning function names for the discarded-status
  /// rule, unioned with the names collected from scanned headers. Fixture
  /// tests use this to seed the rule without a real header.
  std::set<std::string> extra_status_functions;
};

struct SourceLintReport {
  /// Sorted by (file, line, rule), deduplicated.
  std::vector<Finding> findings;
  int files = 0;
  int64_t tokens = 0;
  /// Findings swallowed by NOLINT / file-level allow markers.
  int inline_suppressed = 0;
  /// Findings swallowed by the baseline (ApplyBaseline).
  int baseline_suppressed = 0;
  /// Baseline entries that matched nothing — stale, should be deleted.
  std::vector<std::string> stale_baseline;

  bool clean() const { return findings.empty(); }
};

/// The analyzer. Add sources (from disk or memory), then Run() once; the
/// concurrency pack is cross-TU, so all files must be added before Run.
class SourceLint {
 public:
  explicit SourceLint(SourceLintOptions options = {});

  /// Lexes and registers an in-memory source. `path` is the repo-relative
  /// path rules scope on ("src/serve/engine.cc"); fixture tests pass
  /// invented src/ paths.
  void AddSource(std::string path, std::string_view source);

  /// Reads root/relative from disk and registers it.
  Status AddFileFromDisk(const std::string& root, const std::string& relative);

  /// Runs every enabled rule over every registered file plus the cross-TU
  /// passes. Idempotent per instance (rebuilds from the lexed files).
  SourceLintReport Run();

 private:
  SourceLintOptions options_;
  std::vector<LexedFile> files_;
};

/// Loads a suppression baseline: one `path:rule` entry per line, `#`
/// comments and blank lines ignored. Missing file = empty baseline (OK).
Status LoadBaseline(const std::string& path, std::set<std::string>* entries);

/// Removes findings whose BaselineKey() is in `entries`; counts them in
/// report->baseline_suppressed and records unmatched entries as stale.
void ApplyBaseline(const std::set<std::string>& entries,
                   SourceLintReport* report);

/// Lexes, models, and analyzes every `.h/.cc/.cpp` under root/src (sorted,
/// recursive). The standard whole-repo entry point used by cgkgr_analyze
/// and the repo_analyze test.
Status AnalyzeRepo(const std::string& root, const SourceLintOptions& options,
                   SourceLintReport* report);

}  // namespace analysis
}  // namespace cgkgr

#endif  // CGKGR_ANALYSIS_SOURCE_LINT_H_
