#include <algorithm>
#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analysis/source_packs.h"
#include "common/string_util.h"

namespace cgkgr {
namespace analysis {
namespace internal {

/// \file
/// Memory pack: ownership, persistence, and page discipline. Ports the
/// regex rules from the retired tools/lint_repo.py onto real token
/// streams (rule ids unchanged so existing NOLINT / allow markers keep
/// working) and adds mem-mmap-deref for the store:: page contract.

namespace {

/// Sanctioned std::ofstream writers: the ckpt subsystem (which implements
/// the atomic-publish protocol everyone else must go through), the obs
/// sinks (append-oriented telemetry, not recoverable state), the dataset
/// exporter, and the bench-artifact writer — the single sanctioned
/// raw-file JSON sink (exp::WriteArtifact; every perf artifact flows
/// through it rather than hand-rolled string concatenation).
bool OfstreamSanctioned(const std::string& path) {
  return PathStartsWith(path, "src/ckpt/") ||
         PathStartsWith(path, "src/obs/") || path == "src/data/io.cc" ||
         path == "src/exp/artifact.cc";
}

bool IsStdQualified(const std::vector<Token>& toks, size_t i) {
  return i >= 2 && toks[i - 1].text == "::" && TokIs(toks, i - 2, "std");
}

/// naked-new: `new` outside std::make_unique/make_shared. The library owns
/// memory via containers and smart pointers only. `operator new`
/// declarations are not allocations.
void NakedNewRule(const TranslationUnit& tu, Emitter* emitter) {
  const std::vector<Token>& toks = tu.lex.tokens;
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!TokIs(toks, i, "new")) continue;
    if (i > 0 && TokIs(toks, i - 1, "operator")) continue;
    const Token& next = toks[i + 1];
    if (next.kind != TokKind::kIdent && next.text != "(" &&
        next.text != "::") {
      continue;
    }
    emitter->Emit(tu.lex, toks[i].line, "naked-new",
                  "naked new; use std::make_unique/make_shared or a "
                  "container");
  }
}

/// raw-ofstream: std::ofstream outside the sanctioned writers.
void RawOfstreamRule(const TranslationUnit& tu, Emitter* emitter) {
  if (OfstreamSanctioned(tu.lex.path)) return;
  const std::vector<Token>& toks = tu.lex.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind == TokKind::kIdent && toks[i].text == "ofstream" &&
        IsStdQualified(toks, i)) {
      emitter->Emit(tu.lex, toks[i].line, "raw-ofstream",
                    "raw std::ofstream state write outside src/ckpt/; "
                    "persist through ckpt::Writer (atomic publish + CRC "
                    "framing, docs/checkpointing.md)");
    }
  }
}

/// printf-family: C stdio output in src/; output goes through CGKGR_LOG,
/// TablePrinter, or StrFormat (sanctioned sinks carry file-level allows).
void PrintfFamilyRule(const TranslationUnit& tu, Emitter* emitter) {
  static const std::set<std::string> kPrintf = {
      "printf", "fprintf",  "vprintf",   "vfprintf", "sprintf",  "snprintf",
      "vsprintf", "vsnprintf", "puts",   "fputs",    "putchar",  "fputc"};
  const std::vector<Token>& toks = tu.lex.tokens;
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind == TokKind::kIdent && kPrintf.count(toks[i].text) != 0 &&
        toks[i + 1].text == "(") {
      emitter->Emit(tu.lex, toks[i].line, "printf-family",
                    "printf-family call in src/; use CGKGR_LOG, "
                    "TablePrinter, or StrFormat");
    }
  }
}

/// adhoc-timing: direct std::chrono clock use outside the timing substrate
/// (src/obs/ and common/timer.h). Timing goes through WallTimer and the
/// obs instruments so every measurement lands in the metrics registry.
void AdhocTimingRule(const TranslationUnit& tu, Emitter* emitter) {
  const std::string& path = tu.lex.path;
  if (PathStartsWith(path, "src/obs/") || path == "src/common/timer.h") {
    return;
  }
  const std::vector<Token>& toks = tu.lex.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    const std::string& t = toks[i].text;
    const bool hit = (t == "chrono" && IsStdQualified(toks, i)) ||
                     t == "steady_clock" || t == "high_resolution_clock" ||
                     t == "system_clock";
    if (hit) {
      emitter->Emit(tu.lex, toks[i].line, "adhoc-timing",
                    "ad-hoc std::chrono timing; use WallTimer "
                    "(common/timer.h) and record into the obs metrics "
                    "registry / trace spans");
    }
  }
}

/// raw-histogram: a class/struct named *Histogram outside src/obs/.
/// Forward declarations (`class Histogram;`) are fine.
void RawHistogramRule(const TranslationUnit& tu, Emitter* emitter) {
  if (PathStartsWith(tu.lex.path, "src/obs/")) return;
  const std::vector<Token>& toks = tu.lex.tokens;
  for (size_t i = 0; i + 2 < toks.size(); ++i) {
    if (!TokIs(toks, i, "class") && !TokIs(toks, i, "struct")) continue;
    const Token& name = toks[i + 1];
    if (name.kind != TokKind::kIdent) continue;
    const std::string& n = name.text;
    static const std::string kSuffix = "Histogram";
    if (n.size() < kSuffix.size() ||
        n.compare(n.size() - kSuffix.size(), kSuffix.size(), kSuffix) != 0) {
      continue;
    }
    if (toks[i + 2].text == ";") continue;  // bare forward declaration
    emitter->Emit(tu.lex, name.line, "raw-histogram",
                  "hand-rolled histogram type outside src/obs/; use "
                  "obs::Histogram via the MetricsRegistry");
  }
}

/// mem-mmap-deref: MmapFile (the raw page-granular mapping) named outside
/// src/store/. Page access is validated and RSS-bounded only inside the
/// sanctioned store:: readers; everyone else consumes their typed views.
void MmapDerefRule(const TranslationUnit& tu, Emitter* emitter) {
  if (PathStartsWith(tu.lex.path, "src/store/")) return;
  const std::vector<Token>& toks = tu.lex.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent || toks[i].text != "MmapFile") {
      continue;
    }
    // A bare forward declaration names the type without touching pages.
    if (i > 0 &&
        (TokIs(toks, i - 1, "class") || TokIs(toks, i - 1, "struct")) &&
        TokIs(toks, i + 1, ";")) {
      continue;
    }
    emitter->Emit(tu.lex, toks[i].line, "mem-mmap-deref",
                  "MmapFile page access outside src/store/; raw page "
                  "derefs bypass bounds validation and the bounded-RSS "
                  "contract — read through the store:: readers");
  }
}

/// discarded-status: a call to a Status/Result-returning project function
/// used as a bare statement. Token-stream statement anchoring resolves
/// multi-line calls, which the retired line-local regex could not: an
/// argument call on a continuation line of CGKGR_RETURN_NOT_OK(...) looked
/// like a fresh statement to the regex and false-positived.
void DiscardedStatusRule(const RepoModel& repo, const TranslationUnit& tu,
                         Emitter* emitter) {
  const std::vector<Token>& toks = tu.lex.tokens;
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent || toks[i].preprocessor ||
        repo.status_functions.count(toks[i].text) == 0) {
      continue;
    }
    if (toks[i + 1].text != "(" || toks[i + 1].match < 0) continue;
    // The full call expression must be the whole statement: `... ) ;`.
    const size_t close = static_cast<size_t>(toks[i + 1].match);
    if (!TokIs(toks, close + 1, ";")) continue;
    // Walk back over a receiver chain (obj.member->Call / ns::Call) to the
    // statement's first token.
    size_t start = i;
    while (start >= 2 &&
           (toks[start - 1].text == "." || toks[start - 1].text == "->" ||
            toks[start - 1].text == "::") &&
           toks[start - 2].kind == TokKind::kIdent) {
      start -= 2;
    }
    bool bare = false;
    if (start == 0) {
      bare = true;
    } else {
      const std::string& prev = toks[start - 1].text;
      if (prev == ";" || prev == "{" || prev == "}" || prev == "else" ||
          prev == "do") {
        bare = true;
      } else if (prev == ")" && toks[start - 1].match >= 0) {
        // `if (...) Call();` is a bare statement; `(void)Call();` is an
        // explicit discard; any other preceding `)` (casts, macro heads)
        // is treated as consuming the value.
        const size_t open = static_cast<size_t>(toks[start - 1].match);
        const bool control =
            open > 0 &&
            (TokIs(toks, open - 1, "if") || TokIs(toks, open - 1, "for") ||
             TokIs(toks, open - 1, "while") ||
             TokIs(toks, open - 1, "switch"));
        const bool void_cast =
            open + 2 == start && TokIs(toks, open + 1, "void");
        bare = control && !void_cast;
      }
    }
    if (!bare) continue;
    emitter->Emit(
        tu.lex, toks[i].line, "discarded-status",
        StrFormat("result of Status/Result-returning '%s' is discarded; "
                  "handle it or CGKGR_CHECK(...ok())",
                  toks[i].text.c_str()));
  }
}

/// One curated include-what-you-use binding: symbol -> defining header.
struct IwyuSymbol {
  const char* symbol;
  /// When true, `symbol` is matched as an identifier prefix (macro
  /// families like CGKGR_CHECK / CGKGR_CHECK_MSG).
  bool prefix;
  const char* header;
};

const std::vector<IwyuSymbol>& IwyuTable() {
  static const std::vector<IwyuSymbol> kTable = {
      {"CGKGR_CHECK", true, "common/macros.h"},
      {"CGKGR_DCHECK", true, "common/macros.h"},
      {"CGKGR_RETURN_NOT_OK", true, "common/macros.h"},
      {"CGKGR_GUARDED_BY", true, "common/macros.h"},
      {"CGKGR_PT_GUARDED_BY", true, "common/macros.h"},
      {"CGKGR_REQUIRES", true, "common/macros.h"},
      {"CGKGR_ACQUIRE", true, "common/macros.h"},
      {"CGKGR_ACQUIRED", true, "common/macros.h"},
      {"CGKGR_RELEASE", true, "common/macros.h"},
      {"CGKGR_EXCLUDES", true, "common/macros.h"},
      {"CGKGR_CAPABILITY", true, "common/macros.h"},
      {"CGKGR_LOG", false, "common/logging.h"},
      {"TablePrinter", false, "common/table_printer.h"},
      {"StrFormat", false, "common/string_util.h"},
      {"MutexLock", false, "common/mutex.h"},
      {"ReaderMutexLock", false, "common/mutex.h"},
      {"WriterMutexLock", false, "common/mutex.h"},
      {"CondVar", false, "common/mutex.h"},
      {"ThreadPool", false, "common/thread_pool.h"},
      {"WallTimer", false, "common/timer.h"},
      {"MetricsRegistry", false, "obs/metrics.h"},
      {"ScopedSpan", false, "obs/trace.h"},
      {"TraceCollector", false, "obs/trace.h"},
      {"JsonlSink", false, "obs/jsonl.h"},
      {"JsonlRow", false, "obs/jsonl.h"},
      {"JsonEscape", false, "obs/json.h"},
      {"ProcessStats", false, "obs/process_stats.h"},
      {"SampleProcessStats", false, "obs/process_stats.h"},
      {"ExperimentSpec", false, "exp/spec.h"},
      {"CaseSpec", false, "exp/spec.h"},
      {"CaseResult", false, "exp/artifact.h"},
      {"WriteArtifact", false, "exp/artifact.h"},
      {"ReadArtifact", false, "exp/artifact.h"},
      {"CompareArtifacts", false, "exp/compare.h"},
      {"RunSpec", false, "exp/runner.h"},
      {"ListFilesWithSuffixes", false, "ckpt/io.h"},
      {"SnapshotDelta", false, "serve/delta.h"},
      {"BuildDelta", false, "serve/delta.h"},
      {"ApplyDelta", false, "serve/delta.h"},
      {"SnapshotFingerprint", false, "serve/delta.h"},
      {"ResponseStatusName", false, "serve/request.h"},
      {"Router", false, "serve/router.h"},
      {"Frontend", false, "serve/frontend.h"},
      {"EngineStats", false, "serve/stats.h"},
      {"FrontendStats", false, "serve/stats.h"},
  };
  return kTable;
}

/// True when the TU forward-declares `symbol` — the IWYU-sanctioned way to
/// name a type used only by pointer or reference.
bool ForwardDeclares(const std::vector<Token>& toks,
                     const std::string& symbol) {
  for (size_t i = 0; i + 2 < toks.size(); ++i) {
    if ((TokIs(toks, i, "class") || TokIs(toks, i, "struct")) &&
        toks[i + 1].kind == TokKind::kIdent && toks[i + 1].text == symbol &&
        toks[i + 2].text == ";") {
      return true;
    }
  }
  return false;
}

/// iwyu-project: a project-owned symbol used without directly including
/// the header that defines it (restricted to the curated table above; the
/// goal is catching headers leaking transitively, not full IWYU).
void IwyuRule(const TranslationUnit& tu, Emitter* emitter) {
  const std::vector<Token>& toks = tu.lex.tokens;
  // First use of each needed header: header -> (line, symbol text).
  std::map<std::string, std::pair<int, std::string>> needed;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    const std::string& t = toks[i].text;
    for (const IwyuSymbol& entry : IwyuTable()) {
      const bool hit = entry.prefix ? t.rfind(entry.symbol, 0) == 0
                                    : t == entry.symbol;
      if (!hit) continue;
      needed.emplace(entry.header, std::make_pair(toks[i].line, t));
      break;
    }
  }
  for (const auto& [header, use] : needed) {
    if (tu.lex.path == "src/" + header) continue;  // the defining header
    if (std::find(tu.lex.includes.begin(), tu.lex.includes.end(), header) !=
        tu.lex.includes.end()) {
      continue;
    }
    if (ForwardDeclares(toks, use.second)) continue;
    emitter->Emit(tu.lex, use.first, "iwyu-project",
                  StrFormat("uses '%s' without directly including \"%s\"",
                            use.second.c_str(), header.c_str()));
  }
}

}  // namespace

void RunMemoryPack(const RepoModel& repo, Emitter* emitter) {
  for (const TranslationUnit& tu : repo.tus) {
    if (!InSrc(tu.lex.path)) continue;
    if (emitter->Enabled("naked-new")) NakedNewRule(tu, emitter);
    if (emitter->Enabled("raw-ofstream")) RawOfstreamRule(tu, emitter);
    if (emitter->Enabled("printf-family")) PrintfFamilyRule(tu, emitter);
    if (emitter->Enabled("adhoc-timing")) AdhocTimingRule(tu, emitter);
    if (emitter->Enabled("raw-histogram")) RawHistogramRule(tu, emitter);
    if (emitter->Enabled("mem-mmap-deref")) MmapDerefRule(tu, emitter);
    if (emitter->Enabled("discarded-status")) {
      DiscardedStatusRule(repo, tu, emitter);
    }
    if (emitter->Enabled("iwyu-project")) IwyuRule(tu, emitter);
  }
}

}  // namespace internal
}  // namespace analysis
}  // namespace cgkgr
