#include "analysis/tape_lint.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "common/macros.h"
#include "common/string_util.h"
#include "common/table_printer.h"

namespace cgkgr {
namespace analysis {

namespace {

using autograd::Node;

std::string ShapeString(const std::vector<int64_t>& shape) {
  std::vector<std::string> dims;
  dims.reserve(shape.size());
  for (int64_t d : shape) dims.push_back(StrFormat("%lld", (long long)d));
  return "[" + Join(dims, ", ") + "]";
}

/// Assigns "MatMul#3"-style labels in DFS discovery order so reports are
/// deterministic for a given tape.
class NodeLabeler {
 public:
  std::string Label(const Node* node) {
    auto [it, inserted] = ids_.emplace(node, ids_.size());
    return StrFormat("%s#%zu", node->op_name, it->second);
  }

 private:
  std::unordered_map<const Node*, size_t> ids_;
};

}  // namespace

const char* TapeViolationName(TapeViolation violation) {
  switch (violation) {
    case TapeViolation::kNonScalarLoss:
      return "non-scalar-loss";
    case TapeViolation::kShapeMismatch:
      return "shape-mismatch";
    case TapeViolation::kFreedBuffer:
      return "freed-buffer";
    case TapeViolation::kGradShapeMismatch:
      return "grad-shape-mismatch";
    case TapeViolation::kDetachedNode:
      return "detached-node";
    case TapeViolation::kOrphanedNode:
      return "orphaned-node";
    case TapeViolation::kUnreachableParameter:
      return "unreachable-parameter";
  }
  return "unknown";
}

std::string TapeLintReport::ToTable() const {
  TablePrinter census({"Tape", "Count"});
  census.AddRow({"nodes", StrFormat("%lld", (long long)nodes)});
  census.AddRow({"edges", StrFormat("%lld", (long long)edges)});
  census.AddRow({"parameters", StrFormat("%lld", (long long)parameters)});
  census.AddRow({"reachable parameters",
                 StrFormat("%lld", (long long)reachable_parameters)});
  if (frozen_parameters > 0) {
    census.AddRow({"expected-frozen parameters",
                   StrFormat("%lld", (long long)frozen_parameters)});
  }
  census.AddRow({"violations", StrFormat("%zu", issues.size())});
  std::string out = census.ToString();
  if (!issues.empty()) {
    TablePrinter table({"Violation", "Node", "Detail"});
    for (const TapeLintIssue& issue : issues) {
      table.AddRow({TapeViolationName(issue.code), issue.node, issue.detail});
    }
    out += table.ToString();
  }
  return out;
}

Status LintTape(const autograd::Variable& loss,
                const std::vector<autograd::Variable>& parameters,
                const std::vector<std::string>& names, TapeLintReport* report,
                const TapeLintOptions& options) {
  CGKGR_CHECK(report != nullptr);
  CGKGR_CHECK(names.empty() || names.size() == parameters.size());
  *report = TapeLintReport{};
  report->parameters = static_cast<int64_t>(parameters.size());
  NodeLabeler labeler;

  auto add = [report](TapeViolation code, std::string node,
                      std::string detail) {
    report->issues.push_back(
        TapeLintIssue{code, std::move(node), std::move(detail)});
  };

  // Root checks. A broken root means no tape to walk, so bail out early —
  // everything downstream would be noise.
  if (!loss.defined()) {
    add(TapeViolation::kNonScalarLoss, "loss", "loss variable is undefined");
  } else if (loss.value().size() != 1) {
    add(TapeViolation::kNonScalarLoss, labeler.Label(loss.node().get()),
        StrFormat("loss must be scalar, got shape %s",
                  loss.value().ShapeString().c_str()));
  } else if (!loss.requires_grad()) {
    add(TapeViolation::kNonScalarLoss, labeler.Label(loss.node().get()),
        "loss does not require grad: no tape was recorded "
        "(forward ran under NoGradGuard or only constants?)");
  }
  if (!report->issues.empty()) {
    return Status::Internal(
        StrFormat("tape lint: %s (%s)",
                  TapeViolationName(report->issues.front().code),
                  report->issues.front().detail.c_str()));
  }

  // Iterative DFS over every recorded edge (not just requires-grad ones:
  // shape metadata is validated for constants too).
  std::vector<const Node*> stack = {loss.node().get()};
  std::unordered_map<const Node*, bool> visited;
  visited.emplace(loss.node().get(), true);
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    ++report->nodes;
    const std::string label = labeler.Label(node);

    if (node->backward_fn && node->inputs.empty()) {
      add(TapeViolation::kOrphanedNode, label,
          "backward function attached but no inputs recorded; "
          "its backward pass is a silent no-op");
    }
    if (!node->backward_fn && !node->inputs.empty()) {
      add(TapeViolation::kDetachedNode, label,
          StrFormat("%zu input(s) recorded but no backward function; "
                    "gradient flow stops here",
                    node->inputs.size()));
    }
    if (!node->grad.empty() && !node->grad.SameShape(node->value)) {
      add(TapeViolation::kGradShapeMismatch, label,
          StrFormat("grad shape %s != value shape %s",
                    node->grad.ShapeString().c_str(),
                    node->value.ShapeString().c_str()));
    }
    if (node->input_shapes.size() != node->inputs.size()) {
      add(TapeViolation::kShapeMismatch, label,
          StrFormat("%zu input(s) recorded but %zu shape(s); "
                    "tape metadata is inconsistent",
                    node->inputs.size(), node->input_shapes.size()));
    }

    const size_t checked_edges =
        std::min(node->inputs.size(), node->input_shapes.size());
    for (size_t i = 0; i < node->inputs.size(); ++i) {
      const Node* input = node->inputs[i].get();
      ++report->edges;
      if (i < checked_edges) {
        const std::vector<int64_t>& recorded = node->input_shapes[i];
        if (input->value.empty() && tensor::ShapeVolume(recorded) > 0) {
          add(TapeViolation::kFreedBuffer, label,
              StrFormat("input %zu (%s) was recorded with shape %s but its "
                        "buffer is now empty",
                        i, labeler.Label(input).c_str(),
                        ShapeString(recorded).c_str()));
        } else if (input->value.shape() != recorded) {
          add(TapeViolation::kShapeMismatch, label,
              StrFormat("input %zu (%s) now has shape %s but was recorded "
                        "with shape %s",
                        i, labeler.Label(input).c_str(),
                        input->value.ShapeString().c_str(),
                        ShapeString(recorded).c_str()));
        }
      }
      if (input->requires_grad && !node->requires_grad) {
        add(TapeViolation::kDetachedNode, label,
            StrFormat("input %zu (%s) requires grad but this node does not; "
                      "the backward pass will never reach it",
                      i, labeler.Label(input).c_str()));
      }
      if (visited.emplace(input, true).second) stack.push_back(input);
    }
  }

  for (size_t p = 0; p < parameters.size(); ++p) {
    const autograd::Variable& param = parameters[p];
    CGKGR_CHECK_MSG(param.defined(), "LintTape: parameter %zu is undefined",
                    p);
    const std::string name =
        names.empty() ? StrFormat("param#%zu", p) : names[p];
    if (!param.requires_grad()) continue;
    if (visited.find(param.node().get()) != visited.end()) {
      ++report->reachable_parameters;
      continue;
    }
    // Declared staged-training exemption (see TapeLintOptions).
    bool expected = false;
    for (const std::string& prefix : options.expected_frozen) {
      if (name.compare(0, prefix.size(), prefix) == 0) {
        expected = true;
        break;
      }
    }
    if (expected) {
      ++report->frozen_parameters;
    } else {
      add(TapeViolation::kUnreachableParameter, name,
          StrFormat("trainable parameter (shape %s) is not reachable from "
                    "the loss; the optimizer will keep it frozen",
                    param.value().ShapeString().c_str()));
    }
  }

  if (report->clean()) return Status::OK();
  return Status::Internal(
      StrFormat("tape lint: %zu violation(s), first = %s (%s)",
                report->issues.size(),
                TapeViolationName(report->issues.front().code),
                report->issues.front().detail.c_str()));
}

Status LintTape(const autograd::Variable& loss,
                const nn::ParameterStore& store, TapeLintReport* report,
                const TapeLintOptions& options) {
  return LintTape(loss, store.parameters(), store.Names(), report, options);
}

}  // namespace analysis
}  // namespace cgkgr
