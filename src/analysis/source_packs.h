#ifndef CGKGR_ANALYSIS_SOURCE_PACKS_H_
#define CGKGR_ANALYSIS_SOURCE_PACKS_H_

#include <set>
#include <string>
#include <vector>

#include "analysis/source_lint.h"
#include "analysis/source_model.h"

namespace cgkgr {
namespace analysis {
namespace internal {

/// \file
/// Internal seam between the SourceLint driver and the three rule packs
/// (rules_determinism.cc, rules_memory.cc, rules_concurrency.cc). Not part
/// of the public analyzer API.

/// Everything a pack sees: all translation units plus the cross-TU symbol
/// sets the driver pre-computes.
struct RepoModel {
  std::vector<TranslationUnit> tus;
  /// Names of Status/Result-returning functions (from headers + options).
  std::set<std::string> status_functions;
  /// Type names that are unordered containers: the std names plus every
  /// alias (`using OverrideMap = std::unordered_map<...>`) found anywhere,
  /// so an alias declared in a header is recognized in the .cc using it.
  std::set<std::string> unordered_type_names;
};

/// Finding sink: applies the rule filter and the per-file inline
/// suppressions (NOLINT / allow markers) before recording.
class Emitter {
 public:
  Emitter(const std::set<std::string>* enabled_rules,
          SourceLintReport* report);

  /// True when `rule` survives the --rules filter.
  bool Enabled(const std::string& rule) const;

  /// Records a finding unless suppressed inline in `lex`.
  void Emit(const LexedFile& lex, int line, const std::string& rule,
            std::string message);

 private:
  const std::set<std::string>* enabled_rules_;
  SourceLintReport* report_;
};

void RunDeterminismPack(const RepoModel& repo, Emitter* emitter);
void RunMemoryPack(const RepoModel& repo, Emitter* emitter);
void RunConcurrencyPack(const RepoModel& repo, Emitter* emitter);

/// True when `path` (repo-relative, forward slashes) starts with `prefix`.
bool PathStartsWith(const std::string& path, std::string_view prefix);

/// True when `path` is under src/ — the default rule scope.
bool InSrc(const std::string& path);

}  // namespace internal
}  // namespace analysis
}  // namespace cgkgr

#endif  // CGKGR_ANALYSIS_SOURCE_PACKS_H_
