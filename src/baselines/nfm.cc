#include "baselines/nfm.h"

#include "ckpt/checkpoint.h"
#include "autograd/ops.h"
#include "common/macros.h"
#include "models/parallel_trainer.h"
#include "models/trainer_util.h"
#include "nn/adam.h"

namespace cgkgr {
namespace baselines {

namespace {
using autograd::Variable;
}  // namespace

Nfm::Nfm(const data::PresetHyperParams& hparams) : hparams_(hparams) {}

Status Nfm::Fit(const data::Dataset& dataset,
                const models::TrainOptions& options) {
  const int64_t d = hparams_.embedding_dim;
  store_ = nn::ParameterStore();
  Rng init_rng(options.seed ^ 0x4F4D4E464D000000ULL);
  user_table_ = std::make_unique<nn::EmbeddingTable>(
      &store_, "user_emb", dataset.num_users, d, &init_rng);
  item_table_ = std::make_unique<nn::EmbeddingTable>(
      &store_, "item_emb", dataset.num_items, d, &init_rng);
  user_bias_ = store_.Create("user_bias", {dataset.num_users, 1},
                             nn::Init::kZeros, &init_rng);
  item_bias_ = store_.Create("item_bias", {dataset.num_items, 1},
                             nn::Init::kZeros, &init_rng);
  global_bias_ = store_.Create("global_bias", {1}, nn::Init::kZeros,
                               &init_rng);
  hidden_ = std::make_unique<nn::Dense>(&store_, "hidden", d, d,
                                        nn::Activation::kRelu, &init_rng);
  output_ = std::make_unique<nn::Dense>(&store_, "output", d, 1,
                                        nn::Activation::kIdentity, &init_rng);

  nn::AdamOptions adam;
  adam.learning_rate = hparams_.learning_rate;
  adam.l2 = hparams_.l2;
  nn::AdamOptimizer optimizer(store_.parameters(), adam);

  const auto all_positives = dataset.BuildAllPositives();
  fitted_ = true;

  models::ParallelTrainer trainer(options, &store_, &optimizer);
  auto loss_fn = [&](const models::TrainBatch& batch, Rng* /*rng*/) {
    std::vector<int64_t> users = batch.users;
    users.insert(users.end(), batch.users.begin(), batch.users.end());
    std::vector<int64_t> items = batch.positive_items;
    items.insert(items.end(), batch.negative_items.begin(),
                 batch.negative_items.end());
    Variable scores = Forward(users, items);
    std::vector<float> labels(users.size(), 0.0f);
    std::fill(labels.begin(),
              labels.begin() + static_cast<int64_t>(batch.users.size()),
              1.0f);
    return autograd::BCEWithLogits(scores, std::move(labels));
  };
  auto run_epoch = [&](int64_t /*epoch*/, Rng* rng) {
    return trainer.RunEpoch(dataset.train, all_positives, dataset.num_items,
                            rng, loss_fn);
  };

  return models::RunTrainingLoop(this, &store_, &optimizer, dataset, options,
                                 run_epoch, &stats_);
}

Variable Nfm::Forward(const std::vector<int64_t>& users,
                      const std::vector<int64_t>& items) {
  const int64_t n = static_cast<int64_t>(users.size());
  Variable eu = user_table_->Lookup(users);
  Variable ei = item_table_->Lookup(items);
  // Bi-interaction pooling of {e_u, e_i} = e_u . e_i (Hadamard).
  Variable interaction = autograd::Mul(eu, ei);
  Variable deep = output_->Apply(hidden_->Apply(interaction));  // (n, 1)
  Variable bu = autograd::Gather(user_bias_, users);            // (n, 1)
  Variable bi = autograd::Gather(item_bias_, items);            // (n, 1)
  Variable sum = autograd::Add(autograd::Add(deep, bu), bi);
  Variable flat = autograd::Reshape(sum, {n});
  // Broadcast the scalar global bias by repeating its row.
  Variable w0 = autograd::Reshape(
      autograd::RowRepeat(autograd::Reshape(global_bias_, {1, 1}), n), {n});
  return autograd::Add(flat, w0);
}

void Nfm::ScorePairs(const std::vector<int64_t>& users,
                     const std::vector<int64_t>& items,
                     std::vector<float>* out) {
  CGKGR_CHECK_MSG(fitted_, "ScorePairs before Fit");
  CGKGR_CHECK(users.size() == items.size() && out != nullptr);
  autograd::NoGradGuard no_grad;
  Variable scores = Forward(users, items);
  out->assign(scores.value().data(),
              scores.value().data() + scores.value().size());
}

// Persistence: every parameter in creation order
// under one named section (validated on load).
void Nfm::SaveState(ckpt::Writer* writer) const {
  CGKGR_CHECK_MSG(fitted_, "SaveState before Fit");
  writer->BeginSection("model/" + name());
  ckpt::WriteParameterStore(store_, writer);
}

Status Nfm::LoadState(ckpt::Reader* reader) {
  if (!fitted_) {
    return Status::InvalidArgument("LoadState before Fit/Prepare: " + name());
  }
  CGKGR_RETURN_NOT_OK(reader->ExpectSection("model/" + name()));
  CGKGR_RETURN_NOT_OK(ckpt::ReadParameterStore(reader, &store_));
  return Status::OK();
}

}  // namespace baselines
}  // namespace cgkgr
