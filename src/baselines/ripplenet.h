#ifndef CGKGR_BASELINES_RIPPLENET_H_
#define CGKGR_BASELINES_RIPPLENET_H_

#include <memory>
#include <string>
#include <vector>

#include "data/presets.h"
#include "graph/knowledge_graph.h"
#include "models/recommender.h"
#include "nn/embedding.h"

namespace cgkgr {
namespace baselines {

/// RippleNet (Wang et al., CIKM 2018): represents each user by "ripple
/// sets" — fixed-size samples of KG triplets reachable from the user's
/// interacted items — and scores items by attention of the item embedding
/// over those triplets: p_j ~ softmax(v^T R_{r_j} h_j), o_h = sum p_j t_j,
/// y = sigma((sum_h o_h)^T v).
class RippleNet : public models::RecommenderModel {
 public:
  explicit RippleNet(const data::PresetHyperParams& hparams);

  std::string name() const override { return "RippleNet"; }

  Status Fit(const data::Dataset& dataset,
             const models::TrainOptions& options) override;

  void ScorePairs(const std::vector<int64_t>& users,
                  const std::vector<int64_t>& items,
                  std::vector<float>* out) override;

  /// models::RecommenderModel persistence API (see docs/checkpointing.md).
  void SaveState(ckpt::Writer* writer) const override;
  Status LoadState(ckpt::Reader* reader) override;

 private:
  /// Per-user, per-hop fixed-size triplet memory.
  struct RippleSet {
    std::vector<int64_t> heads;
    std::vector<int64_t> relations;
    std::vector<int64_t> tails;
  };

  autograd::Variable Forward(const std::vector<int64_t>& users,
                             const std::vector<int64_t>& items);

  data::PresetHyperParams hparams_;
  bool fitted_ = false;
  int64_t num_hops_ = 2;
  int64_t memory_size_ = 16;
  /// ripple_sets_[user][hop]
  std::vector<std::vector<RippleSet>> ripple_sets_;
  nn::ParameterStore store_;
  std::unique_ptr<nn::EmbeddingTable> entity_table_;
  autograd::Variable relation_matrices_;  // (R + 1, d, d)
};

}  // namespace baselines
}  // namespace cgkgr

#endif  // CGKGR_BASELINES_RIPPLENET_H_
