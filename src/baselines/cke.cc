#include "baselines/cke.h"

#include "ckpt/checkpoint.h"
#include "autograd/ops.h"
#include "common/macros.h"
#include "models/parallel_trainer.h"
#include "models/trainer_util.h"
#include "nn/adam.h"

namespace cgkgr {
namespace baselines {

namespace {
using autograd::Variable;

/// Weight of the TransR loss relative to the recommendation loss.
constexpr float kKgLossWeight = 0.5f;
}  // namespace

Cke::Cke(const data::PresetHyperParams& hparams) : hparams_(hparams) {}

Status Cke::Fit(const data::Dataset& dataset,
                const models::TrainOptions& options) {
  if (dataset.kg.empty()) {
    return Status::InvalidArgument("CKE requires a knowledge graph");
  }
  const int64_t d = hparams_.embedding_dim;
  num_entities_ = dataset.num_entities;
  kg_triplets_ = dataset.kg;
  store_ = nn::ParameterStore();
  Rng init_rng(options.seed ^ 0xCCE0000000000001ULL);
  user_table_ = std::make_unique<nn::EmbeddingTable>(
      &store_, "user_emb", dataset.num_users, d, &init_rng);
  item_offset_table_ = std::make_unique<nn::EmbeddingTable>(
      &store_, "item_offset", dataset.num_items, d, &init_rng);
  entity_table_ = std::make_unique<nn::EmbeddingTable>(
      &store_, "entity_emb", dataset.num_entities, d, &init_rng);
  relation_vectors_ = store_.Create("relation_vec", {dataset.num_relations, d},
                                    nn::Init::kXavierUniform, &init_rng);
  relation_matrices_ = store_.Create("relation_mat",
                                     {dataset.num_relations, d, d},
                                     nn::Init::kXavierUniform, &init_rng);

  nn::AdamOptions adam;
  adam.learning_rate = hparams_.learning_rate;
  adam.l2 = hparams_.l2;
  nn::AdamOptimizer optimizer(store_.parameters(), adam);

  const auto all_positives = dataset.BuildAllPositives();
  fitted_ = true;

  models::ParallelTrainer trainer(options, &store_, &optimizer);
  auto loss_fn = [&](const models::TrainBatch& batch, Rng* rng) {
    const size_t b = batch.users.size();
    // Recommendation part: BCE over positives and negatives.
    std::vector<int64_t> users = batch.users;
    users.insert(users.end(), batch.users.begin(), batch.users.end());
    std::vector<int64_t> items = batch.positive_items;
    items.insert(items.end(), batch.negative_items.begin(),
                 batch.negative_items.end());
    Variable scores =
        autograd::RowDot(user_table_->Lookup(users), ItemRepr(items));
    std::vector<float> labels(users.size(), 0.0f);
    std::fill(labels.begin(), labels.begin() + static_cast<int64_t>(b),
              1.0f);
    Variable loss = autograd::BCEWithLogits(scores, std::move(labels));

    // TransR part on a same-size sample of triplets with corrupted
    // tails as negatives.
    std::vector<int64_t> heads;
    std::vector<int64_t> rels;
    std::vector<int64_t> tails;
    std::vector<int64_t> corrupt_tails;
    for (size_t i = 0; i < b; ++i) {
      const graph::Triplet& t =
          kg_triplets_[rng->UniformInt(kg_triplets_.size())];
      heads.push_back(t.head);
      rels.push_back(t.relation);
      tails.push_back(t.tail);
      corrupt_tails.push_back(static_cast<int64_t>(
          rng->UniformInt(static_cast<uint64_t>(num_entities_))));
    }
    Variable pos_distance = TransRDistance(heads, rels, tails);
    Variable neg_distance = TransRDistance(heads, rels, corrupt_tails);
    // Margin-free soft ranking loss: softplus(d_pos - d_neg).
    Variable kg_loss = autograd::BPRLoss(neg_distance, pos_distance);
    return autograd::Add(loss, autograd::Scale(kg_loss, kKgLossWeight));
  };
  auto run_epoch = [&](int64_t /*epoch*/, Rng* rng) {
    return trainer.RunEpoch(dataset.train, all_positives, dataset.num_items,
                            rng, loss_fn);
  };

  return models::RunTrainingLoop(this, &store_, &optimizer, dataset, options,
                                 run_epoch, &stats_);
}

Variable Cke::ItemRepr(const std::vector<int64_t>& items) {
  // v_i = eta_i + e_i (structural embedding), Zhang et al. Eq. (6).
  return autograd::Add(item_offset_table_->Lookup(items),
                       entity_table_->Lookup(items));
}

Variable Cke::TransRDistance(const std::vector<int64_t>& heads,
                             const std::vector<int64_t>& relations,
                             const std::vector<int64_t>& tails) {
  Variable h = entity_table_->Lookup(heads);
  Variable t = entity_table_->Lookup(tails);
  Variable h_proj = autograd::RelationMatMul(h, relations, relation_matrices_);
  Variable t_proj = autograd::RelationMatMul(t, relations, relation_matrices_);
  Variable r = autograd::Gather(relation_vectors_, relations);
  Variable diff = autograd::Sub(autograd::Add(h_proj, r), t_proj);
  return autograd::RowDot(diff, diff);
}

void Cke::ScorePairs(const std::vector<int64_t>& users,
                     const std::vector<int64_t>& items,
                     std::vector<float>* out) {
  CGKGR_CHECK_MSG(fitted_, "ScorePairs before Fit");
  CGKGR_CHECK(users.size() == items.size() && out != nullptr);
  autograd::NoGradGuard no_grad;
  Variable scores =
      autograd::RowDot(user_table_->Lookup(users), ItemRepr(items));
  out->assign(scores.value().data(),
              scores.value().data() + scores.value().size());
}

// Persistence: every parameter in creation order
// under one named section (validated on load).
void Cke::SaveState(ckpt::Writer* writer) const {
  CGKGR_CHECK_MSG(fitted_, "SaveState before Fit");
  writer->BeginSection("model/" + name());
  ckpt::WriteParameterStore(store_, writer);
}

Status Cke::LoadState(ckpt::Reader* reader) {
  if (!fitted_) {
    return Status::InvalidArgument("LoadState before Fit/Prepare: " + name());
  }
  CGKGR_RETURN_NOT_OK(reader->ExpectSection("model/" + name()));
  CGKGR_RETURN_NOT_OK(ckpt::ReadParameterStore(reader, &store_));
  return Status::OK();
}

}  // namespace baselines
}  // namespace cgkgr
