#include "baselines/ckan.h"

#include "ckpt/checkpoint.h"
#include "autograd/ops.h"
#include "common/macros.h"
#include "models/parallel_trainer.h"
#include "models/trainer_util.h"
#include "nn/adam.h"

namespace cgkgr {
namespace baselines {

namespace {
using autograd::Variable;
}  // namespace

Ckan::Ckan(const data::PresetHyperParams& hparams) : hparams_(hparams) {}

Status Ckan::Fit(const data::Dataset& dataset,
                 const models::TrainOptions& options) {
  if (dataset.kg.empty()) {
    return Status::InvalidArgument("CKAN requires a knowledge graph");
  }
  const int64_t d = hparams_.embedding_dim;
  depth_ = std::max<int64_t>(1, hparams_.depth);
  train_graph_ = std::make_unique<graph::InteractionGraph>(
      dataset.BuildTrainGraph());
  kg_ = std::make_unique<graph::KnowledgeGraph>(dataset.BuildKnowledgeGraph());

  store_ = nn::ParameterStore();
  Rng init_rng(options.seed ^ 0x636B616E00000001ULL);
  entity_table_ = std::make_unique<nn::EmbeddingTable>(
      &store_, "entity_emb", dataset.num_entities, d, &init_rng);
  relation_emb_ = store_.Create("relation_emb", {kg_->relation_id_space(), d},
                                nn::Init::kXavierUniform, &init_rng);
  att_hidden_ = std::make_unique<nn::Dense>(
      &store_, "att_hidden", 3 * d, d, nn::Activation::kLeakyRelu, &init_rng);
  att_out_ = std::make_unique<nn::Dense>(&store_, "att_out", d, 1,
                                         nn::Activation::kIdentity, &init_rng);

  nn::AdamOptions adam;
  adam.learning_rate = hparams_.learning_rate;
  adam.l2 = hparams_.l2;
  nn::AdamOptimizer optimizer(store_.parameters(), adam);

  const auto all_positives = dataset.BuildAllPositives();
  fitted_ = true;
  eval_rng_ = Rng(options.seed ^ 0x636B616E0000EEEEULL);

  models::ParallelTrainer trainer(options, &store_, &optimizer);
  auto loss_fn = [&](const models::TrainBatch& batch, Rng* rng) {
    std::vector<int64_t> users = batch.users;
    users.insert(users.end(), batch.users.begin(), batch.users.end());
    std::vector<int64_t> items = batch.positive_items;
    items.insert(items.end(), batch.negative_items.begin(),
                 batch.negative_items.end());
    Variable scores = Forward(users, items, rng);
    std::vector<float> labels(users.size(), 0.0f);
    std::fill(labels.begin(),
              labels.begin() + static_cast<int64_t>(batch.users.size()),
              1.0f);
    return autograd::BCEWithLogits(scores, std::move(labels));
  };
  auto run_epoch = [&](int64_t /*epoch*/, Rng* rng) {
    return trainer.RunEpoch(dataset.train, all_positives, dataset.num_items,
                            rng, loss_fn);
  };

  return models::RunTrainingLoop(this, &store_, &optimizer, dataset, options,
                                 run_epoch, &stats_);
}

Variable Ckan::PropagateHops(const graph::NodeFlow& flow,
                             autograd::Variable base, int64_t per_root,
                             int64_t batch) {
  int64_t segment = per_root;  // grows by kg_sample_size per hop
  Variable repr = std::move(base);
  for (int64_t l = 1; l <= flow.depth(); ++l) {
    segment *= hparams_.kg_sample_size;
    const auto& heads = flow.entities[static_cast<size_t>(l - 1)];
    const auto& tails = flow.entities[static_cast<size_t>(l)];
    const auto& rels = flow.relations[static_cast<size_t>(l)];
    Variable head_emb = entity_table_->Lookup(heads);
    Variable tail_emb = entity_table_->Lookup(tails);
    Variable head_rep =
        autograd::RowRepeat(head_emb, hparams_.kg_sample_size);
    Variable rel_e = autograd::Gather(relation_emb_, rels);
    Variable att_in = autograd::ConcatCols(
        autograd::ConcatCols(head_rep, rel_e), tail_emb);
    Variable logits = autograd::Reshape(
        att_out_->Apply(att_hidden_->Apply(att_in)),
        {static_cast<int64_t>(tails.size())});
    // Attention normalized over the user's/item's entire hop-l triplet set.
    Variable weights = autograd::SegmentSoftmax(logits, segment);
    Variable pooled = autograd::SegmentWeightedSum(tail_emb, weights, segment);
    CGKGR_CHECK(pooled.value().dim(0) == batch);
    repr = autograd::Add(repr, pooled);
  }
  return repr;
}

Variable Ckan::Forward(const std::vector<int64_t>& users,
                       const std::vector<int64_t>& items, Rng* rng) {
  const int64_t batch = static_cast<int64_t>(users.size());
  const int64_t seeds_per_user = hparams_.user_sample_size;

  // --- user side: collaborative seeds, then knowledge propagation ---
  std::vector<int64_t> seeds = graph::NeighborSampler::SampleUserNeighbors(
      *train_graph_, users, seeds_per_user, /*fallback_item=*/0, rng);
  Variable seed_emb = entity_table_->Lookup(seeds);
  Variable uniform = autograd::Constant(tensor::Tensor::Full(
      {static_cast<int64_t>(seeds.size())},
      1.0f / static_cast<float>(seeds_per_user)));
  Variable user_base =
      autograd::SegmentWeightedSum(seed_emb, uniform, seeds_per_user);
  graph::NodeFlow user_flow = graph::NeighborSampler::SampleNodeFlow(
      *kg_, seeds, depth_, hparams_.kg_sample_size, rng);
  Variable user_repr =
      PropagateHops(user_flow, user_base, seeds_per_user, batch);

  // --- item side: expansion of the item itself ---
  Variable item_base = entity_table_->Lookup(items);
  graph::NodeFlow item_flow = graph::NeighborSampler::SampleNodeFlow(
      *kg_, items, depth_, hparams_.kg_sample_size, rng);
  Variable item_repr = PropagateHops(item_flow, item_base, 1, batch);

  return autograd::RowDot(user_repr, item_repr);
}

void Ckan::ScorePairs(const std::vector<int64_t>& users,
                      const std::vector<int64_t>& items,
                      std::vector<float>* out) {
  CGKGR_CHECK_MSG(fitted_, "ScorePairs before Fit");
  CGKGR_CHECK(users.size() == items.size() && out != nullptr);
  autograd::NoGradGuard no_grad;
  out->resize(users.size());
  constexpr size_t kChunk = 1024;
  std::vector<int64_t> chunk_users;
  std::vector<int64_t> chunk_items;
  for (size_t begin = 0; begin < users.size(); begin += kChunk) {
    const size_t end = std::min(users.size(), begin + kChunk);
    chunk_users.assign(users.begin() + begin, users.begin() + end);
    chunk_items.assign(items.begin() + begin, items.begin() + end);
    Variable scores = Forward(chunk_users, chunk_items, &eval_rng_);
    for (size_t i = begin; i < end; ++i) {
      (*out)[i] = scores.value()[static_cast<int64_t>(i - begin)];
    }
  }
}

// Persistence: every parameter in creation order, plus the eval RNG stream
// under one named section (validated on load).
void Ckan::SaveState(ckpt::Writer* writer) const {
  CGKGR_CHECK_MSG(fitted_, "SaveState before Fit");
  writer->BeginSection("model/" + name());
  ckpt::WriteParameterStore(store_, writer);
  ckpt::WriteRngState(eval_rng_, writer);
}

Status Ckan::LoadState(ckpt::Reader* reader) {
  if (!fitted_) {
    return Status::InvalidArgument("LoadState before Fit/Prepare: " + name());
  }
  CGKGR_RETURN_NOT_OK(reader->ExpectSection("model/" + name()));
  CGKGR_RETURN_NOT_OK(ckpt::ReadParameterStore(reader, &store_));
  CGKGR_RETURN_NOT_OK(ckpt::ReadRngState(reader, &eval_rng_));
  return Status::OK();
}

}  // namespace baselines
}  // namespace cgkgr
