#include "baselines/kgnn_ls.h"

#include "autograd/ops.h"

namespace cgkgr {
namespace baselines {

namespace {
using autograd::Variable;

/// Label smoothness needs at least 2 hops to reach item nodes again (items
/// connect to entities, and entities back to other items), so the LS
/// receptive field is widened on shallow presets.
data::PresetHyperParams WithMinLsDepth(data::PresetHyperParams hparams) {
  hparams.depth = std::max<int64_t>(2, hparams.depth);
  return hparams;
}

}  // namespace

KgnnLs::KgnnLs(const data::PresetHyperParams& hparams)
    : Kgcn(WithMinLsDepth(hparams), "KGNN-LS") {}

Variable KgnnLs::ComputeBatchLoss(const models::TrainBatch& batch, Rng* rng) {
  std::vector<int64_t> users = batch.users;
  users.insert(users.end(), batch.users.begin(), batch.users.end());
  std::vector<int64_t> items = batch.positive_items;
  items.insert(items.end(), batch.negative_items.begin(),
               batch.negative_items.end());

  Variable ls_prediction;
  Variable scores = Forward(users, items, rng, &ls_prediction);

  std::vector<float> labels(users.size(), 0.0f);
  std::fill(labels.begin(),
            labels.begin() + static_cast<int64_t>(batch.users.size()), 1.0f);

  // Squared-error label smoothness: the propagated label estimate of each
  // held-out seed should match the pair's true label.
  Variable targets =
      autograd::Constant(tensor::Tensor({static_cast<int64_t>(labels.size())},
                                        labels));
  Variable residual = autograd::Sub(ls_prediction, targets);
  Variable ls_loss = autograd::Mean(autograd::Mul(residual, residual));

  Variable bce = autograd::BCEWithLogits(scores, std::move(labels));
  return autograd::Add(bce, autograd::Scale(ls_loss, ls_weight_));
}

}  // namespace baselines
}  // namespace cgkgr
