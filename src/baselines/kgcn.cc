#include "baselines/kgcn.h"

#include "ckpt/checkpoint.h"
#include "autograd/ops.h"
#include "common/macros.h"
#include "models/parallel_trainer.h"
#include "models/trainer_util.h"
#include "nn/adam.h"

namespace cgkgr {
namespace baselines {

namespace {
using autograd::Variable;
}  // namespace

Kgcn::Kgcn(const data::PresetHyperParams& hparams, std::string name)
    : hparams_(hparams), name_(std::move(name)) {}

Status Kgcn::Fit(const data::Dataset& dataset,
                 const models::TrainOptions& options) {
  if (dataset.kg.empty()) {
    return Status::InvalidArgument(name_ + " requires a knowledge graph");
  }
  const int64_t d = hparams_.embedding_dim;
  const int64_t depth = std::max<int64_t>(1, hparams_.depth);
  train_graph_ = std::make_unique<graph::InteractionGraph>(
      dataset.BuildTrainGraph());
  kg_ = std::make_unique<graph::KnowledgeGraph>(dataset.BuildKnowledgeGraph());

  store_ = nn::ParameterStore();
  Rng init_rng(options.seed ^ 0x6B67636E00000001ULL);
  user_table_ = std::make_unique<nn::EmbeddingTable>(
      &store_, "user_emb", dataset.num_users, d, &init_rng);
  entity_table_ = std::make_unique<nn::EmbeddingTable>(
      &store_, "entity_emb", dataset.num_entities, d, &init_rng);
  relation_emb_ = store_.Create("relation_emb", {kg_->relation_id_space(), d},
                                nn::Init::kXavierUniform, &init_rng);
  layers_.clear();
  for (int64_t l = 1; l <= depth; ++l) {
    const nn::Activation act =
        l == 1 ? nn::Activation::kTanh : nn::Activation::kRelu;
    layers_.push_back(std::make_unique<nn::Dense>(
        &store_, "layer/hop" + std::to_string(l), d, d, act, &init_rng));
  }

  nn::AdamOptions adam;
  adam.learning_rate = hparams_.learning_rate;
  adam.l2 = hparams_.l2;
  nn::AdamOptimizer optimizer(store_.parameters(), adam);

  const auto all_positives = dataset.BuildAllPositives();
  fitted_ = true;
  eval_rng_ = Rng(options.seed ^ 0x6B67636E0000EEEEULL);

  models::ParallelTrainer trainer(options, &store_, &optimizer);
  // ComputeBatchLoss is virtual: KGNN-LS rides this same loop with its
  // label-smoothness term added.
  auto loss_fn = [&](const models::TrainBatch& batch, Rng* rng) {
    return ComputeBatchLoss(batch, rng);
  };
  auto run_epoch = [&](int64_t /*epoch*/, Rng* rng) {
    return trainer.RunEpoch(dataset.train, all_positives, dataset.num_items,
                            rng, loss_fn);
  };

  return models::RunTrainingLoop(this, &store_, &optimizer, dataset, options,
                                 run_epoch, &stats_);
}

Variable Kgcn::ComputeBatchLoss(const models::TrainBatch& batch, Rng* rng) {
  std::vector<int64_t> users = batch.users;
  users.insert(users.end(), batch.users.begin(), batch.users.end());
  std::vector<int64_t> items = batch.positive_items;
  items.insert(items.end(), batch.negative_items.begin(),
               batch.negative_items.end());
  Variable scores = Forward(users, items, rng, nullptr);
  std::vector<float> labels(users.size(), 0.0f);
  std::fill(labels.begin(),
            labels.begin() + static_cast<int64_t>(batch.users.size()), 1.0f);
  return autograd::BCEWithLogits(scores, std::move(labels));
}

Variable Kgcn::Forward(const std::vector<int64_t>& users,
                       const std::vector<int64_t>& items, Rng* rng,
                       Variable* ls_prediction) {
  const int64_t batch = static_cast<int64_t>(users.size());
  const int64_t depth = static_cast<int64_t>(layers_.size());
  const int64_t segment = hparams_.kg_sample_size;

  const graph::NodeFlow flow = graph::NeighborSampler::SampleNodeFlow(
      *kg_, items, depth, segment, rng);

  Variable user_emb = user_table_->Lookup(users);  // (B, d)

  std::vector<Variable> hop_emb(static_cast<size_t>(depth) + 1);
  hop_emb[0] = entity_table_->Lookup(items);
  for (int64_t l = 1; l <= depth; ++l) {
    hop_emb[static_cast<size_t>(l)] =
        entity_table_->Lookup(flow.entities[static_cast<size_t>(l)]);
  }

  // Label propagation bookkeeping for KGNN-LS: ground-truth labels of the
  // sampled nodes (1 when the node is an item this user interacted with in
  // training, else 0) propagate leaf-to-root through the same attention
  // weights; observed item labels are clamped at every hop, and the seed
  // item itself is held out so its propagated value becomes the prediction.
  std::vector<Variable> hop_label(static_cast<size_t>(depth) + 1);
  auto node_labels = [&](int64_t hop) {
    const auto& entities = flow.entities[static_cast<size_t>(hop)];
    std::vector<float> labels(entities.size());
    for (size_t j = 0; j < entities.size(); ++j) {
      const int64_t user = users[j / (entities.size() / users.size())];
      labels[j] = entities[j] < train_graph_->num_items() &&
                          train_graph_->HasInteraction(user, entities[j])
                      ? 1.0f
                      : 0.0f;
    }
    return labels;
  };
  auto item_mask = [&](int64_t hop) {
    const auto& entities = flow.entities[static_cast<size_t>(hop)];
    std::vector<float> mask(entities.size());
    for (size_t j = 0; j < entities.size(); ++j) {
      mask[j] = entities[j] < train_graph_->num_items() ? 1.0f : 0.0f;
    }
    return mask;
  };
  if (ls_prediction != nullptr) {
    std::vector<float> leaf = node_labels(depth);
    const int64_t leaf_count = static_cast<int64_t>(leaf.size());
    hop_label[static_cast<size_t>(depth)] = autograd::Constant(
        tensor::Tensor({leaf_count, 1}, std::move(leaf)));
  }

  for (int64_t l = depth; l >= 1; --l) {
    const Variable& parents = hop_emb[static_cast<size_t>(l - 1)];
    const Variable& children = hop_emb[static_cast<size_t>(l)];
    const int64_t num_children = children.value().dim(0);
    // pi(u, r): user-relation affinity, one score per sampled edge.
    Variable user_rep =
        autograd::RowRepeat(user_emb, num_children / batch);
    Variable rel_emb = autograd::Gather(
        relation_emb_, flow.relations[static_cast<size_t>(l)]);
    Variable logits = autograd::RowDot(user_rep, rel_emb);
    Variable weights = autograd::SegmentSoftmax(logits, segment);
    Variable pooled =
        autograd::SegmentWeightedSum(children, weights, segment);
    hop_emb[static_cast<size_t>(l - 1)] =
        layers_[static_cast<size_t>(l - 1)]->Apply(
            autograd::Add(parents, pooled));

    if (ls_prediction != nullptr) {
      // Propagate labels with the same attention weights.
      Variable propagated = autograd::SegmentWeightedSum(
          hop_label[static_cast<size_t>(l)], weights, segment);  // (K, 1)
      if (l == 1) {
        // Seed labels are held out: the propagated value is the prediction.
        hop_label[0] = propagated;
      } else {
        // Clamp observed item labels; entities keep the propagated value.
        std::vector<float> mask = item_mask(l - 1);
        std::vector<float> truth = node_labels(l - 1);
        const int64_t k = static_cast<int64_t>(mask.size());
        std::vector<float> inverse(mask.size());
        std::vector<float> clamped(mask.size());
        for (size_t j = 0; j < mask.size(); ++j) {
          inverse[j] = 1.0f - mask[j];
          clamped[j] = mask[j] * truth[j];
        }
        Variable keep = autograd::Mul(
            autograd::Constant(tensor::Tensor({k, 1}, std::move(inverse))),
            propagated);
        hop_label[static_cast<size_t>(l - 1)] = autograd::Add(
            keep,
            autograd::Constant(tensor::Tensor({k, 1}, std::move(clamped))));
      }
    }
  }

  if (ls_prediction != nullptr) {
    *ls_prediction = autograd::Reshape(hop_label[0], {batch});
  }
  return autograd::RowDot(user_emb, hop_emb[0]);
}

void Kgcn::ScorePairs(const std::vector<int64_t>& users,
                      const std::vector<int64_t>& items,
                      std::vector<float>* out) {
  CGKGR_CHECK_MSG(fitted_, "ScorePairs before Fit");
  CGKGR_CHECK(users.size() == items.size() && out != nullptr);
  autograd::NoGradGuard no_grad;
  out->resize(users.size());
  constexpr size_t kChunk = 1024;
  std::vector<int64_t> chunk_users;
  std::vector<int64_t> chunk_items;
  for (size_t begin = 0; begin < users.size(); begin += kChunk) {
    const size_t end = std::min(users.size(), begin + kChunk);
    chunk_users.assign(users.begin() + begin, users.begin() + end);
    chunk_items.assign(items.begin() + begin, items.begin() + end);
    Variable scores = Forward(chunk_users, chunk_items, &eval_rng_, nullptr);
    for (size_t i = begin; i < end; ++i) {
      (*out)[i] = scores.value()[static_cast<int64_t>(i - begin)];
    }
  }
}

// Persistence: every parameter in creation order, plus the eval RNG stream
// under one named section (validated on load).
void Kgcn::SaveState(ckpt::Writer* writer) const {
  CGKGR_CHECK_MSG(fitted_, "SaveState before Fit");
  writer->BeginSection("model/" + name());
  ckpt::WriteParameterStore(store_, writer);
  ckpt::WriteRngState(eval_rng_, writer);
}

Status Kgcn::LoadState(ckpt::Reader* reader) {
  if (!fitted_) {
    return Status::InvalidArgument("LoadState before Fit/Prepare: " + name());
  }
  CGKGR_RETURN_NOT_OK(reader->ExpectSection("model/" + name()));
  CGKGR_RETURN_NOT_OK(ckpt::ReadParameterStore(reader, &store_));
  CGKGR_RETURN_NOT_OK(ckpt::ReadRngState(reader, &eval_rng_));
  return Status::OK();
}

}  // namespace baselines
}  // namespace cgkgr
