#include "baselines/bprmf.h"

#include "ckpt/checkpoint.h"
#include "autograd/ops.h"
#include "common/macros.h"
#include "models/parallel_trainer.h"
#include "models/trainer_util.h"
#include "nn/adam.h"
#include "tensor/tensor_ops.h"

namespace cgkgr {
namespace baselines {

BprMf::BprMf(const data::PresetHyperParams& hparams) : hparams_(hparams) {}

Status BprMf::Fit(const data::Dataset& dataset,
                  const models::TrainOptions& options) {
  const int64_t d = hparams_.embedding_dim;
  store_ = nn::ParameterStore();
  Rng init_rng(options.seed ^ 0xB0B0B0B0B0B0B0B0ULL);
  user_table_ = std::make_unique<nn::EmbeddingTable>(
      &store_, "user_emb", dataset.num_users, d, &init_rng);
  item_table_ = std::make_unique<nn::EmbeddingTable>(
      &store_, "item_emb", dataset.num_items, d, &init_rng);
  nn::AdamOptions adam;
  adam.learning_rate = hparams_.learning_rate;
  adam.l2 = hparams_.l2;
  nn::AdamOptimizer optimizer(store_.parameters(), adam);

  const auto all_positives = dataset.BuildAllPositives();
  fitted_ = true;

  models::ParallelTrainer trainer(options, &store_, &optimizer);
  auto loss_fn = [&](const models::TrainBatch& batch, Rng* /*rng*/) {
    autograd::Variable vu = user_table_->Lookup(batch.users);
    autograd::Variable vpos = item_table_->Lookup(batch.positive_items);
    autograd::Variable vneg = item_table_->Lookup(batch.negative_items);
    return autograd::BPRLoss(autograd::RowDot(vu, vpos),
                             autograd::RowDot(vu, vneg));
  };
  auto run_epoch = [&](int64_t /*epoch*/, Rng* rng) {
    return trainer.RunEpoch(dataset.train, all_positives, dataset.num_items,
                            rng, loss_fn);
  };

  return models::RunTrainingLoop(this, &store_, &optimizer, dataset, options,
                                 run_epoch, &stats_);
}

void BprMf::ScorePairs(const std::vector<int64_t>& users,
                       const std::vector<int64_t>& items,
                       std::vector<float>* out) {
  CGKGR_CHECK_MSG(fitted_, "ScorePairs before Fit");
  CGKGR_CHECK(users.size() == items.size() && out != nullptr);
  // Pure dot products: read the tables directly, no tape needed.
  const tensor::Tensor& u = user_table_->table().value();
  const tensor::Tensor& i = item_table_->table().value();
  const int64_t d = hparams_.embedding_dim;
  out->resize(users.size());
  for (size_t p = 0; p < users.size(); ++p) {
    (*out)[p] = tensor::Dot(d, u.data() + users[p] * d,
                            i.data() + items[p] * d);
  }
}

// Persistence: every parameter in creation order
// under one named section (validated on load).
void BprMf::SaveState(ckpt::Writer* writer) const {
  CGKGR_CHECK_MSG(fitted_, "SaveState before Fit");
  writer->BeginSection("model/" + name());
  ckpt::WriteParameterStore(store_, writer);
}

Status BprMf::LoadState(ckpt::Reader* reader) {
  if (!fitted_) {
    return Status::InvalidArgument("LoadState before Fit/Prepare: " + name());
  }
  CGKGR_RETURN_NOT_OK(reader->ExpectSection("model/" + name()));
  CGKGR_RETURN_NOT_OK(ckpt::ReadParameterStore(reader, &store_));
  return Status::OK();
}

}  // namespace baselines
}  // namespace cgkgr
