#ifndef CGKGR_BASELINES_CKAN_H_
#define CGKGR_BASELINES_CKAN_H_

#include <memory>
#include <string>
#include <vector>

#include "data/presets.h"
#include "graph/sampler.h"
#include "models/recommender.h"
#include "nn/dense.h"
#include "nn/embedding.h"

namespace cgkgr {
namespace baselines {

/// CKAN (Wang et al., SIGIR 2020): heterogeneous propagation. The user is
/// represented by attention-pooled KG expansions of their interacted items
/// (collaborative propagation seeds the knowledge propagation); the item by
/// expansions of itself. Triplet attention is an MLP over [h || r || t]
/// softmaxed over each hop's whole triplet set; representations are the
/// seed average plus the per-hop pooled tails; score is the inner product.
class Ckan : public models::RecommenderModel {
 public:
  explicit Ckan(const data::PresetHyperParams& hparams);

  std::string name() const override { return "CKAN"; }

  Status Fit(const data::Dataset& dataset,
             const models::TrainOptions& options) override;

  void ScorePairs(const std::vector<int64_t>& users,
                  const std::vector<int64_t>& items,
                  std::vector<float>* out) override;

  /// models::RecommenderModel persistence API (see docs/checkpointing.md).
  void SaveState(ckpt::Writer* writer) const override;
  Status LoadState(ckpt::Reader* reader) override;

 private:
  autograd::Variable Forward(const std::vector<int64_t>& users,
                             const std::vector<int64_t>& items, Rng* rng);

  /// Attention-pooled hop representations summed into `base`.
  /// `per_root` = number of flow roots per batch element.
  autograd::Variable PropagateHops(const graph::NodeFlow& flow,
                                   autograd::Variable base, int64_t per_root,
                                   int64_t batch);

  data::PresetHyperParams hparams_;
  bool fitted_ = false;
  int64_t depth_ = 1;
  std::unique_ptr<graph::InteractionGraph> train_graph_;
  std::unique_ptr<graph::KnowledgeGraph> kg_;
  nn::ParameterStore store_;
  std::unique_ptr<nn::EmbeddingTable> entity_table_;
  autograd::Variable relation_emb_;  // (R + 1, d)
  std::unique_ptr<nn::Dense> att_hidden_;  // (3d -> d), LeakyReLU
  std::unique_ptr<nn::Dense> att_out_;     // (d -> 1)
  Rng eval_rng_{0};
};

}  // namespace baselines
}  // namespace cgkgr

#endif  // CGKGR_BASELINES_CKAN_H_
