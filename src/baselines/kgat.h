#ifndef CGKGR_BASELINES_KGAT_H_
#define CGKGR_BASELINES_KGAT_H_

#include <memory>
#include <string>
#include <vector>

#include "data/presets.h"
#include "graph/sampler.h"
#include "models/recommender.h"
#include "nn/dense.h"
#include "nn/embedding.h"

namespace cgkgr {
namespace baselines {

/// KGAT (Wang et al., KDD 2019): graph attention over the *unified* graph
/// of users, items, and KG entities (interaction edges carry the extra
/// relation r*). Per layer, a node aggregates its sampled neighborhood with
/// TransR-style attention pi(h,r,t) = (W_r t)^T tanh(W_r h + e_r) and a
/// bi-interaction aggregator; training alternates a BPR ranking loss with a
/// TransR embedding loss. As the paper recommends, the CF embeddings are
/// pre-trained with plain BPRMF updates (first epoch).
///
/// Simplification vs. the original: propagation runs over fixed-size
/// sampled neighborhoods (node flows) instead of the full adjacency, and
/// the final representation is the root output of the depth-L propagation
/// rather than a concatenation of per-layer outputs (documented in
/// DESIGN.md).
class Kgat : public models::RecommenderModel {
 public:
  explicit Kgat(const data::PresetHyperParams& hparams);

  std::string name() const override { return "KGAT"; }

  Status Fit(const data::Dataset& dataset,
             const models::TrainOptions& options) override;

  void ScorePairs(const std::vector<int64_t>& users,
                  const std::vector<int64_t>& items,
                  std::vector<float>* out) override;

  /// models::RecommenderModel persistence API (see docs/checkpointing.md).
  void SaveState(ckpt::Writer* writer) const override;
  Status LoadState(ckpt::Reader* reader) override;

 private:
  /// Node id of a user in the unified graph (entities come first).
  int64_t UserNode(int64_t user) const { return num_entities_ + user; }

  /// Depth-L attentive propagation for a batch of unified-graph node ids;
  /// returns the root representations (n, d).
  autograd::Variable Propagate(const std::vector<int64_t>& nodes, Rng* rng);

  /// TransR distance for unified-graph triplets.
  autograd::Variable TransRDistance(const std::vector<int64_t>& heads,
                                    const std::vector<int64_t>& relations,
                                    const std::vector<int64_t>& tails);

  data::PresetHyperParams hparams_;
  bool fitted_ = false;
  int64_t num_entities_ = 0;
  int64_t num_users_ = 0;
  std::unique_ptr<graph::KnowledgeGraph> unified_;
  std::vector<graph::Triplet> unified_triplets_;
  nn::ParameterStore store_;
  std::unique_ptr<nn::EmbeddingTable> node_table_;  // entities then users
  autograd::Variable relation_emb_;       // (R + 2, d)
  autograd::Variable relation_matrices_;  // (R + 2, d, d)
  std::vector<std::unique_ptr<nn::Dense>> w1_;  // bi-interaction, per hop
  std::vector<std::unique_ptr<nn::Dense>> w2_;
  Rng eval_rng_{0};
};

}  // namespace baselines
}  // namespace cgkgr

#endif  // CGKGR_BASELINES_KGAT_H_
