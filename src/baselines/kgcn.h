#ifndef CGKGR_BASELINES_KGCN_H_
#define CGKGR_BASELINES_KGCN_H_

#include <memory>
#include <string>
#include <vector>

#include "data/presets.h"
#include "graph/sampler.h"
#include "models/recommender.h"
#include "models/trainer_util.h"
#include "nn/dense.h"
#include "nn/embedding.h"

namespace cgkgr {
namespace baselines {

/// KGCN (Wang et al., WWW 2019): item-side knowledge graph convolution.
/// Edge weights come from the target user's affinity to the edge relation,
/// pi(u, r) = softmax over neighbors of u . r; per layer the item entity
/// aggregates its weighted neighborhood with a sum aggregator
/// (ReLU inner layers, tanh final layer); score = u . v_i^(L).
class Kgcn : public models::RecommenderModel {
 public:
  explicit Kgcn(const data::PresetHyperParams& hparams, std::string name =
                                                            "KGCN");

  std::string name() const override { return name_; }

  Status Fit(const data::Dataset& dataset,
             const models::TrainOptions& options) override;

  void ScorePairs(const std::vector<int64_t>& users,
                  const std::vector<int64_t>& items,
                  std::vector<float>* out) override;

  /// models::RecommenderModel persistence API (see docs/checkpointing.md).
  void SaveState(ckpt::Writer* writer) const override;
  Status LoadState(ckpt::Reader* reader) override;

 protected:
  /// Scores for a sampled batch. When `ls_prediction` is non-null (used by
  /// the KGNN-LS subclass), the label-propagation estimate of the seed
  /// item's label is written there as a (B) Variable.
  autograd::Variable Forward(const std::vector<int64_t>& users,
                             const std::vector<int64_t>& items, Rng* rng,
                             autograd::Variable* ls_prediction);

  /// One mini-batch loss; KGNN-LS overrides this to add label smoothness.
  virtual autograd::Variable ComputeBatchLoss(const models::TrainBatch& batch,
                                              Rng* rng);

  data::PresetHyperParams hparams_;
  std::string name_;
  bool fitted_ = false;
  std::unique_ptr<graph::InteractionGraph> train_graph_;
  std::unique_ptr<graph::KnowledgeGraph> kg_;
  nn::ParameterStore store_;
  std::unique_ptr<nn::EmbeddingTable> user_table_;
  std::unique_ptr<nn::EmbeddingTable> entity_table_;
  autograd::Variable relation_emb_;  // (R + 1, d)
  std::vector<std::unique_ptr<nn::Dense>> layers_;  // [0] = final hop
  Rng eval_rng_{0};
};

}  // namespace baselines
}  // namespace cgkgr

#endif  // CGKGR_BASELINES_KGCN_H_
