#ifndef CGKGR_BASELINES_BPRMF_H_
#define CGKGR_BASELINES_BPRMF_H_

#include <memory>
#include <string>
#include <vector>

#include "data/presets.h"
#include "models/recommender.h"
#include "nn/embedding.h"

namespace cgkgr {
namespace baselines {

/// BPRMF (Rendle et al., UAI 2009): matrix factorization trained with the
/// Bayesian personalized ranking criterion. The paper's strongest KG-free
/// baseline on several datasets (Sec. IV-B).
class BprMf : public models::RecommenderModel {
 public:
  explicit BprMf(const data::PresetHyperParams& hparams);

  std::string name() const override { return "BPRMF"; }

  Status Fit(const data::Dataset& dataset,
             const models::TrainOptions& options) override;

  void ScorePairs(const std::vector<int64_t>& users,
                  const std::vector<int64_t>& items,
                  std::vector<float>* out) override;

  /// models::RecommenderModel persistence API (see docs/checkpointing.md).
  void SaveState(ckpt::Writer* writer) const override;
  Status LoadState(ckpt::Reader* reader) override;

  /// Read-only access to the learned tables (KGAT pre-trains from these,
  /// as the paper recommends).
  const nn::EmbeddingTable& user_table() const { return *user_table_; }
  const nn::EmbeddingTable& item_table() const { return *item_table_; }

 private:
  data::PresetHyperParams hparams_;
  bool fitted_ = false;
  nn::ParameterStore store_;
  std::unique_ptr<nn::EmbeddingTable> user_table_;
  std::unique_ptr<nn::EmbeddingTable> item_table_;
};

}  // namespace baselines
}  // namespace cgkgr

#endif  // CGKGR_BASELINES_BPRMF_H_
