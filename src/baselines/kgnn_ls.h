#ifndef CGKGR_BASELINES_KGNN_LS_H_
#define CGKGR_BASELINES_KGNN_LS_H_

#include <string>

#include "baselines/kgcn.h"

namespace cgkgr {
namespace baselines {

/// KGNN-LS (Wang et al., KDD 2019): the KGCN architecture plus a label
/// smoothness regularizer. The seed item's label is held out and predicted
/// by propagating the (clamped) ground-truth labels of its sampled KG
/// neighbors through the same attention weights; the squared error of that
/// prediction against the pair's true label is added to the loss.
class KgnnLs : public Kgcn {
 public:
  explicit KgnnLs(const data::PresetHyperParams& hparams);

 protected:
  autograd::Variable ComputeBatchLoss(const models::TrainBatch& batch,
                                      Rng* rng) override;

 private:
  /// Weight of the label-smoothness term.
  float ls_weight_ = 0.5f;
};

}  // namespace baselines
}  // namespace cgkgr

#endif  // CGKGR_BASELINES_KGNN_LS_H_
