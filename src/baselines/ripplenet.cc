#include "baselines/ripplenet.h"

#include "ckpt/checkpoint.h"
#include "autograd/ops.h"
#include "common/macros.h"
#include "models/parallel_trainer.h"
#include "models/trainer_util.h"
#include "nn/adam.h"

namespace cgkgr {
namespace baselines {

namespace {
using autograd::Variable;
}  // namespace

RippleNet::RippleNet(const data::PresetHyperParams& hparams)
    : hparams_(hparams) {}

Status RippleNet::Fit(const data::Dataset& dataset,
                      const models::TrainOptions& options) {
  if (dataset.kg.empty()) {
    return Status::InvalidArgument("RippleNet requires a knowledge graph");
  }
  const int64_t d = hparams_.embedding_dim;
  const graph::KnowledgeGraph kg = dataset.BuildKnowledgeGraph();
  const graph::InteractionGraph train_graph = dataset.BuildTrainGraph();

  // --- precompute ripple sets from the *train* interactions ---
  Rng ripple_rng(options.seed ^ 0x9199137319931375ULL);
  ripple_sets_.assign(static_cast<size_t>(dataset.num_users), {});
  for (int64_t u = 0; u < dataset.num_users; ++u) {
    auto& hops = ripple_sets_[static_cast<size_t>(u)];
    hops.resize(static_cast<size_t>(num_hops_));
    std::vector<int64_t> frontier(train_graph.ItemsOf(u).begin(),
                                  train_graph.ItemsOf(u).end());
    if (frontier.empty()) frontier.push_back(0);  // cold user: dummy seed
    for (int64_t h = 0; h < num_hops_; ++h) {
      RippleSet& set = hops[static_cast<size_t>(h)];
      set.heads.reserve(static_cast<size_t>(memory_size_));
      for (int64_t m = 0; m < memory_size_; ++m) {
        const int64_t head = frontier[ripple_rng.UniformInt(frontier.size())];
        auto neighbors = kg.NeighborsOf(head);
        if (neighbors.empty()) {
          set.heads.push_back(head);
          set.relations.push_back(kg.self_loop_relation());
          set.tails.push_back(head);
          continue;
        }
        const graph::KgNeighbor& n =
            neighbors[ripple_rng.UniformInt(neighbors.size())];
        set.heads.push_back(head);
        set.relations.push_back(n.relation);
        set.tails.push_back(n.entity);
      }
      frontier = set.tails;
    }
  }

  // --- parameters ---
  store_ = nn::ParameterStore();
  Rng init_rng(options.seed ^ 0x2121212121212121ULL);
  entity_table_ = std::make_unique<nn::EmbeddingTable>(
      &store_, "entity_emb", dataset.num_entities, d, &init_rng);
  relation_matrices_ =
      store_.Create("relation_mat", {kg.relation_id_space(), d, d},
                    nn::Init::kXavierUniform, &init_rng);

  nn::AdamOptions adam;
  adam.learning_rate = hparams_.learning_rate;
  adam.l2 = hparams_.l2;
  nn::AdamOptimizer optimizer(store_.parameters(), adam);

  const auto all_positives = dataset.BuildAllPositives();
  fitted_ = true;

  models::ParallelTrainer trainer(options, &store_, &optimizer);
  auto loss_fn = [&](const models::TrainBatch& batch, Rng* /*rng*/) {
    std::vector<int64_t> users = batch.users;
    users.insert(users.end(), batch.users.begin(), batch.users.end());
    std::vector<int64_t> items = batch.positive_items;
    items.insert(items.end(), batch.negative_items.begin(),
                 batch.negative_items.end());
    Variable scores = Forward(users, items);
    std::vector<float> labels(users.size(), 0.0f);
    std::fill(labels.begin(),
              labels.begin() + static_cast<int64_t>(batch.users.size()),
              1.0f);
    return autograd::BCEWithLogits(scores, std::move(labels));
  };
  auto run_epoch = [&](int64_t /*epoch*/, Rng* rng) {
    return trainer.RunEpoch(dataset.train, all_positives, dataset.num_items,
                            rng, loss_fn);
  };

  return models::RunTrainingLoop(this, &store_, &optimizer, dataset, options,
                                 run_epoch, &stats_);
}

Variable RippleNet::Forward(const std::vector<int64_t>& users,
                            const std::vector<int64_t>& items) {
  const int64_t batch = static_cast<int64_t>(users.size());
  Variable item_emb = entity_table_->Lookup(items);  // (B, d)

  Variable user_repr;  // sum over hops of o_h, (B, d)
  for (int64_t h = 0; h < num_hops_; ++h) {
    std::vector<int64_t> heads;
    std::vector<int64_t> rels;
    std::vector<int64_t> tails;
    heads.reserve(static_cast<size_t>(batch * memory_size_));
    for (int64_t b = 0; b < batch; ++b) {
      const RippleSet& set = ripple_sets_[static_cast<size_t>(
          users[static_cast<size_t>(b)])][static_cast<size_t>(h)];
      heads.insert(heads.end(), set.heads.begin(), set.heads.end());
      rels.insert(rels.end(), set.relations.begin(), set.relations.end());
      tails.insert(tails.end(), set.tails.begin(), set.tails.end());
    }
    Variable head_emb = entity_table_->Lookup(heads);  // (B*m, d)
    Variable tail_emb = entity_table_->Lookup(tails);
    Variable projected =
        autograd::RelationMatMul(head_emb, rels, relation_matrices_);
    Variable item_rep = autograd::RowRepeat(item_emb, memory_size_);
    Variable logits = autograd::RowDot(projected, item_rep);
    Variable probs = autograd::SegmentSoftmax(logits, memory_size_);
    Variable o = autograd::SegmentWeightedSum(tail_emb, probs, memory_size_);
    user_repr = user_repr.defined() ? autograd::Add(user_repr, o) : o;
  }
  return autograd::RowDot(user_repr, item_emb);
}

void RippleNet::ScorePairs(const std::vector<int64_t>& users,
                           const std::vector<int64_t>& items,
                           std::vector<float>* out) {
  CGKGR_CHECK_MSG(fitted_, "ScorePairs before Fit");
  CGKGR_CHECK(users.size() == items.size() && out != nullptr);
  autograd::NoGradGuard no_grad;
  out->resize(users.size());
  constexpr size_t kChunk = 2048;
  std::vector<int64_t> chunk_users;
  std::vector<int64_t> chunk_items;
  for (size_t begin = 0; begin < users.size(); begin += kChunk) {
    const size_t end = std::min(users.size(), begin + kChunk);
    chunk_users.assign(users.begin() + begin, users.begin() + end);
    chunk_items.assign(items.begin() + begin, items.begin() + end);
    Variable scores = Forward(chunk_users, chunk_items);
    for (size_t i = begin; i < end; ++i) {
      (*out)[i] = scores.value()[static_cast<int64_t>(i - begin)];
    }
  }
}

// Persistence: every parameter in creation order
// under one named section (validated on load).
void RippleNet::SaveState(ckpt::Writer* writer) const {
  CGKGR_CHECK_MSG(fitted_, "SaveState before Fit");
  writer->BeginSection("model/" + name());
  ckpt::WriteParameterStore(store_, writer);
}

Status RippleNet::LoadState(ckpt::Reader* reader) {
  if (!fitted_) {
    return Status::InvalidArgument("LoadState before Fit/Prepare: " + name());
  }
  CGKGR_RETURN_NOT_OK(reader->ExpectSection("model/" + name()));
  CGKGR_RETURN_NOT_OK(ckpt::ReadParameterStore(reader, &store_));
  return Status::OK();
}

}  // namespace baselines
}  // namespace cgkgr
