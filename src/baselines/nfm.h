#ifndef CGKGR_BASELINES_NFM_H_
#define CGKGR_BASELINES_NFM_H_

#include <memory>
#include <string>
#include <vector>

#include "data/presets.h"
#include "models/recommender.h"
#include "nn/dense.h"
#include "nn/embedding.h"

namespace cgkgr {
namespace baselines {

/// NFM (He & Chua, SIGIR 2017): neural factorization machine. With user-id
/// and item-id features the bi-interaction layer reduces to the Hadamard
/// product of their embeddings, fed through an MLP, plus first-order bias
/// terms: y = w0 + b_u + b_i + MLP(e_u . e_i).
class Nfm : public models::RecommenderModel {
 public:
  explicit Nfm(const data::PresetHyperParams& hparams);

  std::string name() const override { return "NFM"; }

  Status Fit(const data::Dataset& dataset,
             const models::TrainOptions& options) override;

  void ScorePairs(const std::vector<int64_t>& users,
                  const std::vector<int64_t>& items,
                  std::vector<float>* out) override;

  /// models::RecommenderModel persistence API (see docs/checkpointing.md).
  void SaveState(ckpt::Writer* writer) const override;
  Status LoadState(ckpt::Reader* reader) override;

 private:
  autograd::Variable Forward(const std::vector<int64_t>& users,
                             const std::vector<int64_t>& items);

  data::PresetHyperParams hparams_;
  bool fitted_ = false;
  nn::ParameterStore store_;
  std::unique_ptr<nn::EmbeddingTable> user_table_;
  std::unique_ptr<nn::EmbeddingTable> item_table_;
  autograd::Variable user_bias_;  // (num_users, 1)
  autograd::Variable item_bias_;  // (num_items, 1)
  autograd::Variable global_bias_;  // (1)
  std::unique_ptr<nn::Dense> hidden_;
  std::unique_ptr<nn::Dense> output_;
};

}  // namespace baselines
}  // namespace cgkgr

#endif  // CGKGR_BASELINES_NFM_H_
