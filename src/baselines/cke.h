#ifndef CGKGR_BASELINES_CKE_H_
#define CGKGR_BASELINES_CKE_H_

#include <memory>
#include <string>
#include <vector>

#include "data/presets.h"
#include "graph/knowledge_graph.h"
#include "models/recommender.h"
#include "nn/embedding.h"

namespace cgkgr {
namespace baselines {

/// CKE (Zhang et al., KDD 2016), structural-knowledge part: matrix
/// factorization regularized by TransR embeddings of the KG. The item
/// representation is the MF offset plus the item's entity embedding;
/// the KG is trained jointly with a TransR margin loss
/// (regularization-based method in the paper's taxonomy, Sec. V).
class Cke : public models::RecommenderModel {
 public:
  explicit Cke(const data::PresetHyperParams& hparams);

  std::string name() const override { return "CKE"; }

  Status Fit(const data::Dataset& dataset,
             const models::TrainOptions& options) override;

  void ScorePairs(const std::vector<int64_t>& users,
                  const std::vector<int64_t>& items,
                  std::vector<float>* out) override;

  /// models::RecommenderModel persistence API (see docs/checkpointing.md).
  void SaveState(ckpt::Writer* writer) const override;
  Status LoadState(ckpt::Reader* reader) override;

 private:
  autograd::Variable ItemRepr(const std::vector<int64_t>& items);

  /// Squared TransR plausibility ||h M_r + r - t M_r||^2 per triplet row.
  autograd::Variable TransRDistance(const std::vector<int64_t>& heads,
                                    const std::vector<int64_t>& relations,
                                    const std::vector<int64_t>& tails);

  data::PresetHyperParams hparams_;
  bool fitted_ = false;
  int64_t num_entities_ = 0;
  std::vector<graph::Triplet> kg_triplets_;
  nn::ParameterStore store_;
  std::unique_ptr<nn::EmbeddingTable> user_table_;
  std::unique_ptr<nn::EmbeddingTable> item_offset_table_;
  std::unique_ptr<nn::EmbeddingTable> entity_table_;
  autograd::Variable relation_vectors_;   // (R, d)
  autograd::Variable relation_matrices_;  // (R, d, d)
};

}  // namespace baselines
}  // namespace cgkgr

#endif  // CGKGR_BASELINES_CKE_H_
