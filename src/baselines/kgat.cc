#include "baselines/kgat.h"

#include "ckpt/checkpoint.h"
#include "autograd/ops.h"
#include "common/macros.h"
#include "models/parallel_trainer.h"
#include "models/trainer_util.h"
#include "nn/adam.h"

namespace cgkgr {
namespace baselines {

namespace {
using autograd::Variable;

constexpr float kKgLossWeight = 0.5f;
}  // namespace

Kgat::Kgat(const data::PresetHyperParams& hparams) : hparams_(hparams) {}

Status Kgat::Fit(const data::Dataset& dataset,
                 const models::TrainOptions& options) {
  if (dataset.kg.empty()) {
    return Status::InvalidArgument("KGAT requires a knowledge graph");
  }
  const int64_t d = hparams_.embedding_dim;
  const int64_t depth = std::max<int64_t>(1, hparams_.depth);
  num_entities_ = dataset.num_entities;
  num_users_ = dataset.num_users;

  // Unified graph: KG triplets plus interaction edges labeled r* (id = R).
  const int64_t interact_relation = dataset.num_relations;
  unified_triplets_ = dataset.kg;
  for (const auto& x : dataset.train) {
    unified_triplets_.push_back(
        {x.item, interact_relation, UserNode(x.user)});
  }
  unified_ = std::make_unique<graph::KnowledgeGraph>(
      num_entities_ + num_users_, dataset.num_relations + 1,
      unified_triplets_);

  store_ = nn::ParameterStore();
  Rng init_rng(options.seed ^ 0x6B67617400000001ULL);
  node_table_ = std::make_unique<nn::EmbeddingTable>(
      &store_, "node_emb", num_entities_ + num_users_, d, &init_rng);
  relation_emb_ =
      store_.Create("relation_emb", {unified_->relation_id_space(), d},
                    nn::Init::kXavierUniform, &init_rng);
  relation_matrices_ =
      store_.Create("relation_mat", {unified_->relation_id_space(), d, d},
                    nn::Init::kXavierUniform, &init_rng);
  w1_.clear();
  w2_.clear();
  for (int64_t l = 1; l <= depth; ++l) {
    w1_.push_back(std::make_unique<nn::Dense>(
        &store_, "bi_add/hop" + std::to_string(l), d, d,
        nn::Activation::kLeakyRelu, &init_rng));
    w2_.push_back(std::make_unique<nn::Dense>(
        &store_, "bi_mul/hop" + std::to_string(l), d, d,
        nn::Activation::kLeakyRelu, &init_rng));
  }

  nn::AdamOptions adam;
  adam.learning_rate = hparams_.learning_rate;
  adam.l2 = hparams_.l2;
  nn::AdamOptimizer optimizer(store_.parameters(), adam);

  const auto all_positives = dataset.BuildAllPositives();
  fitted_ = true;
  eval_rng_ = Rng(options.seed ^ 0x6B6761740000EEEEULL);

  bool pretrain = false;  // epoch 1: BPRMF-style warm start
  models::ParallelTrainer trainer(options, &store_, &optimizer);
  auto loss_fn = [&](const models::TrainBatch& batch, Rng* rng) {
    const size_t b = batch.users.size();
    std::vector<int64_t> user_nodes;
    user_nodes.reserve(b);
    for (int64_t u : batch.users) user_nodes.push_back(UserNode(u));

    Variable vu;
    Variable vpos;
    Variable vneg;
    if (pretrain) {
      vu = node_table_->Lookup(user_nodes);
      vpos = node_table_->Lookup(batch.positive_items);
      vneg = node_table_->Lookup(batch.negative_items);
    } else {
      vu = Propagate(user_nodes, rng);
      vpos = Propagate(batch.positive_items, rng);
      vneg = Propagate(batch.negative_items, rng);
    }
    Variable loss = autograd::BPRLoss(autograd::RowDot(vu, vpos),
                                      autograd::RowDot(vu, vneg));

    // TransR loss over unified triplets with corrupted tails.
    std::vector<int64_t> heads;
    std::vector<int64_t> rels;
    std::vector<int64_t> tails;
    std::vector<int64_t> corrupt;
    for (size_t i = 0; i < b; ++i) {
      const graph::Triplet& t =
          unified_triplets_[rng->UniformInt(unified_triplets_.size())];
      heads.push_back(t.head);
      rels.push_back(t.relation);
      tails.push_back(t.tail);
      corrupt.push_back(static_cast<int64_t>(rng->UniformInt(
          static_cast<uint64_t>(num_entities_ + num_users_))));
    }
    Variable kg_loss = autograd::BPRLoss(TransRDistance(heads, rels, corrupt),
                                         TransRDistance(heads, rels, tails));
    return autograd::Add(loss, autograd::Scale(kg_loss, kKgLossWeight));
  };
  auto run_epoch = [&](int64_t epoch, Rng* rng) {
    // Derived from the loop's true epoch number (not a captured counter) so
    // the warm-up stage is not replayed after a checkpoint resume.
    pretrain = epoch == 1;
    // The warm-up epoch intentionally bypasses Propagate, so the
    // bi-interaction layers are declared frozen for lint purposes.
    analysis::TapeLintOptions lint_options;
    if (pretrain) lint_options.expected_frozen = {"bi_add/", "bi_mul/"};
    return trainer.RunEpoch(dataset.train, all_positives, dataset.num_items,
                            rng, loss_fn, lint_options);
  };

  return models::RunTrainingLoop(this, &store_, &optimizer, dataset, options,
                                 run_epoch, &stats_);
}

Variable Kgat::Propagate(const std::vector<int64_t>& nodes, Rng* rng) {
  const int64_t batch = static_cast<int64_t>(nodes.size());
  const int64_t depth = static_cast<int64_t>(w1_.size());
  const int64_t segment = hparams_.kg_sample_size;
  const graph::NodeFlow flow = graph::NeighborSampler::SampleNodeFlow(
      *unified_, nodes, depth, segment, rng);

  std::vector<Variable> hop_emb(static_cast<size_t>(depth) + 1);
  for (int64_t l = 0; l <= depth; ++l) {
    hop_emb[static_cast<size_t>(l)] =
        node_table_->Lookup(flow.entities[static_cast<size_t>(l)]);
  }
  for (int64_t l = depth; l >= 1; --l) {
    const Variable& parents = hop_emb[static_cast<size_t>(l - 1)];
    const Variable& children = hop_emb[static_cast<size_t>(l)];
    const auto& rels = flow.relations[static_cast<size_t>(l)];
    // pi(h, r, t) = (W_r t)^T tanh(W_r h + e_r), LeakyReLU'd then softmaxed.
    Variable parent_rep = autograd::RowRepeat(parents, segment);
    Variable proj_h =
        autograd::RelationMatMul(parent_rep, rels, relation_matrices_);
    Variable proj_t =
        autograd::RelationMatMul(children, rels, relation_matrices_);
    Variable rel_e = autograd::Gather(relation_emb_, rels);
    Variable q = autograd::Tanh(autograd::Add(proj_h, rel_e));
    Variable logits =
        autograd::LeakyRelu(autograd::RowDot(proj_t, q), 0.2f);
    Variable weights = autograd::SegmentSoftmax(logits, segment);
    Variable pooled = autograd::SegmentWeightedSum(children, weights, segment);
    // Bi-interaction aggregator.
    Variable add_part = w1_[static_cast<size_t>(l - 1)]->Apply(
        autograd::Add(parents, pooled));
    Variable mul_part = w2_[static_cast<size_t>(l - 1)]->Apply(
        autograd::Mul(parents, pooled));
    hop_emb[static_cast<size_t>(l - 1)] = autograd::Add(add_part, mul_part);
  }
  CGKGR_CHECK(hop_emb[0].value().dim(0) == batch);
  return hop_emb[0];
}

Variable Kgat::TransRDistance(const std::vector<int64_t>& heads,
                              const std::vector<int64_t>& relations,
                              const std::vector<int64_t>& tails) {
  Variable h = node_table_->Lookup(heads);
  Variable t = node_table_->Lookup(tails);
  Variable h_proj =
      autograd::RelationMatMul(h, relations, relation_matrices_);
  Variable t_proj =
      autograd::RelationMatMul(t, relations, relation_matrices_);
  Variable r = autograd::Gather(relation_emb_, relations);
  Variable diff = autograd::Sub(autograd::Add(h_proj, r), t_proj);
  return autograd::RowDot(diff, diff);
}

void Kgat::ScorePairs(const std::vector<int64_t>& users,
                      const std::vector<int64_t>& items,
                      std::vector<float>* out) {
  CGKGR_CHECK_MSG(fitted_, "ScorePairs before Fit");
  CGKGR_CHECK(users.size() == items.size() && out != nullptr);
  autograd::NoGradGuard no_grad;
  out->resize(users.size());
  constexpr size_t kChunk = 1024;
  std::vector<int64_t> user_nodes;
  std::vector<int64_t> chunk_items;
  for (size_t begin = 0; begin < users.size(); begin += kChunk) {
    const size_t end = std::min(users.size(), begin + kChunk);
    user_nodes.clear();
    for (size_t i = begin; i < end; ++i) user_nodes.push_back(
        UserNode(users[i]));
    chunk_items.assign(items.begin() + begin, items.begin() + end);
    Variable vu = Propagate(user_nodes, &eval_rng_);
    Variable vi = Propagate(chunk_items, &eval_rng_);
    Variable scores = autograd::RowDot(vu, vi);
    for (size_t i = begin; i < end; ++i) {
      (*out)[i] = scores.value()[static_cast<int64_t>(i - begin)];
    }
  }
}

// Persistence: every parameter in creation order, plus the eval RNG stream
// under one named section (validated on load).
void Kgat::SaveState(ckpt::Writer* writer) const {
  CGKGR_CHECK_MSG(fitted_, "SaveState before Fit");
  writer->BeginSection("model/" + name());
  ckpt::WriteParameterStore(store_, writer);
  ckpt::WriteRngState(eval_rng_, writer);
}

Status Kgat::LoadState(ckpt::Reader* reader) {
  if (!fitted_) {
    return Status::InvalidArgument("LoadState before Fit/Prepare: " + name());
  }
  CGKGR_RETURN_NOT_OK(reader->ExpectSection("model/" + name()));
  CGKGR_RETURN_NOT_OK(ckpt::ReadParameterStore(reader, &store_));
  CGKGR_RETURN_NOT_OK(ckpt::ReadRngState(reader, &eval_rng_));
  return Status::OK();
}

}  // namespace baselines
}  // namespace cgkgr
