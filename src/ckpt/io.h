#ifndef CGKGR_CKPT_IO_H_
#define CGKGR_CKPT_IO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "tensor/tensor.h"

namespace cgkgr {
namespace ckpt {

/// On-disk framing of every checkpoint artifact (model state, trainer
/// checkpoints, serve snapshots). See docs/checkpointing.md for the spec.
///
///   [magic "CGKGRCK1" 8B][version u32][payload][footer]
///   footer = [payload_size u64][crc32 u32][tail "CGKGREND" 8B]
///
/// The CRC covers magic + version + payload, so a flipped bit anywhere in
/// the file (including the header) fails validation; the payload-size and
/// tail-magic checks catch truncation and appended garbage before the CRC
/// is even computed. The payload itself is a sequence of type-tagged
/// records (Writer/Reader below), so a reader that drifts out of sync with
/// the writer surfaces a typed Status instead of consuming garbage.
///
/// Byte order is native: checkpoints are same-machine restart artifacts,
/// not portable interchange files.
inline constexpr char kCkptMagic[8] = {'C', 'G', 'K', 'G', 'R', 'C', 'K', '1'};
inline constexpr char kCkptTail[8] = {'C', 'G', 'K', 'G', 'R', 'E', 'N', 'D'};
inline constexpr uint32_t kCkptVersion = 1;

/// IEEE 802.3 CRC-32 (the zlib polynomial) over `size` bytes. Exposed so
/// fault-injection tests can forge and verify footers.
uint32_t Crc32(const void* data, size_t size);

/// Serializes a stream of type-tagged records into an in-memory payload and
/// publishes it atomically: `Commit(path)` stages the framed bytes to
/// `<path>.tmp.<pid>`, fsyncs, renames over `path`, and fsyncs the parent
/// directory. A crash at any point leaves either the old file or the new
/// one — never a torn mix.
class Writer {
 public:
  Writer() = default;

  /// Opens a named section. Readers consume it with ExpectSection(), which
  /// turns writer/reader schema drift into a descriptive error.
  void BeginSection(const std::string& name);

  void WriteU64(uint64_t value);
  void WriteI64(int64_t value);
  void WriteF32(float value);
  void WriteF64(double value);
  void WriteBool(bool value);
  void WriteString(const std::string& value);
  void WriteFloats(const float* data, int64_t count);
  void WriteDoubles(const std::vector<double>& values);
  void WriteI64s(const std::vector<int64_t>& values);
  /// Shape + raw float data; round-trips bit-exactly.
  void WriteTensor(const tensor::Tensor& value);

  /// The accumulated record payload (no framing). Byte-compare two payloads
  /// to assert two states are bit-identical.
  const std::string& payload() const { return payload_; }

  /// Frames payload() with magic/version/CRC footer and atomically
  /// publishes it at `path` (temp file + fsync + rename + directory fsync).
  Status Commit(const std::string& path) const;

  /// The framed file image Commit() writes; exposed for tests that corrupt
  /// bytes in memory before writing them.
  std::string FramedBytes() const;

 private:
  std::string payload_;
};

/// Validating reader over a committed checkpoint file. `Open` verifies the
/// full frame (magic, version, size, tail, CRC) before any record is
/// decoded; every Read* then checks the type tag and remaining bounds and
/// returns a Status on mismatch. No corruption path crashes.
class Reader {
 public:
  /// An empty reader (every read fails); exists so Result<Reader> has a
  /// default state. Use Open() or FromFramedBytes().
  Reader() = default;

  /// Reads and validates the framed file at `path`.
  static Result<Reader> Open(const std::string& path);

  /// Validates an in-memory framed image (as produced by
  /// Writer::FramedBytes); used by tests and by readers of already-loaded
  /// buffers.
  static Result<Reader> FromFramedBytes(const std::string& framed,
                                        const std::string& origin = "<memory>");

  Status ExpectSection(const std::string& name);

  Status ReadU64(uint64_t* value);
  Status ReadI64(int64_t* value);
  Status ReadF32(float* value);
  Status ReadF64(double* value);
  Status ReadBool(bool* value);
  Status ReadString(std::string* value);
  Status ReadFloats(std::vector<float>* values);
  Status ReadDoubles(std::vector<double>* values);
  Status ReadI64s(std::vector<int64_t>* values);
  /// Reads a tensor record into a freshly shaped tensor.
  Status ReadTensor(tensor::Tensor* value);

  /// True once every payload byte has been consumed.
  bool AtEnd() const { return pos_ == payload_.size(); }

  /// The validated record payload (no framing).
  const std::string& payload() const { return payload_; }

 private:
  Status ReadTag(uint8_t expected, const char* what);
  Status ReadRaw(void* out, size_t size, const char* what);
  /// Reads a u64 count and validates `count * elem_size` bytes remain.
  Status ReadCount(size_t elem_size, const char* what, uint64_t* count);

  std::string origin_;
  std::string payload_;
  size_t pos_ = 0;
};

/// Atomically replaces `path` with `contents` (same temp + fsync + rename
/// dance as Writer::Commit, without the checkpoint framing). Used for the
/// checkpoint MANIFEST.
Status AtomicWriteFile(const std::string& path, const std::string& contents);

/// Whole-file read (binary).
Result<std::string> ReadFileToString(const std::string& path);

/// Names (not paths) of regular files in `dir` ending with `suffix`,
/// sorted ascending. NotFound when the directory cannot be opened.
Result<std::vector<std::string>> ListFilesWithSuffix(const std::string& dir,
                                                     const std::string& suffix);

/// ListFilesWithSuffix over several suffixes at once, merged into one
/// ascending name order (how the serve engine interleaves `.snap` and
/// `.delta` publications into a single reload timeline).
Result<std::vector<std::string>> ListFilesWithSuffixes(
    const std::string& dir, const std::vector<std::string>& suffixes);

}  // namespace ckpt
}  // namespace cgkgr

#endif  // CGKGR_CKPT_IO_H_
