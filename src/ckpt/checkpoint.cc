#include "ckpt/checkpoint.h"

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "common/logging.h"
#include "common/macros.h"
#include "common/string_util.h"
#include "obs/metrics.h"

namespace cgkgr {
namespace ckpt {

namespace {

const char kManifestMagic[] = "cgkgr-manifest-v1";

std::atomic<bool> g_shutdown_requested{false};

void ShutdownSignalHandler(int /*signum*/) {
  // Only an atomic store: async-signal-safe.
  g_shutdown_requested.store(true, std::memory_order_relaxed);
}

}  // namespace

Result<Manifest> ReadManifest(const std::string& dir) {
  const std::string path = dir + "/" + kManifestName;
  Result<std::string> contents = ReadFileToString(path);
  if (!contents.ok()) {
    return Status::NotFound("no manifest at " + path + ": " +
                            contents.status().message());
  }
  const std::vector<std::string> lines = Split(contents.value(), '\n');
  if (lines.empty() || lines[0] != kManifestMagic) {
    return Status::InvalidArgument("bad manifest header in " + path);
  }
  Manifest manifest;
  for (size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;
    const std::vector<std::string> fields = Split(lines[i], ' ');
    if (fields.size() != 3) {
      return Status::InvalidArgument(
          StrFormat("%s:%zu: malformed manifest row \"%s\"", path.c_str(),
                    i + 1, lines[i].c_str()));
    }
    ManifestEntry entry;
    entry.file = fields[0];
    if (entry.file.empty() || entry.file.find('/') != std::string::npos) {
      return Status::InvalidArgument(
          StrFormat("%s:%zu: manifest file name \"%s\" must be a bare name",
                    path.c_str(), i + 1, entry.file.c_str()));
    }
    char* end = nullptr;
    entry.epoch = std::strtoll(fields[1].c_str(), &end, 10);
    if (end != fields[1].c_str() + fields[1].size()) {
      return Status::InvalidArgument(
          StrFormat("%s:%zu: malformed epoch \"%s\"", path.c_str(), i + 1,
                    fields[1].c_str()));
    }
    // %a hex floats round-trip the metric exactly.
    entry.metric = std::strtod(fields[2].c_str(), &end);
    if (end != fields[2].c_str() + fields[2].size()) {
      return Status::InvalidArgument(
          StrFormat("%s:%zu: malformed metric \"%s\"", path.c_str(), i + 1,
                    fields[2].c_str()));
    }
    manifest.entries.push_back(std::move(entry));
  }
  return manifest;
}

Status WriteManifest(const std::string& dir, const Manifest& manifest) {
  std::string contents = kManifestMagic;
  contents += '\n';
  for (const ManifestEntry& entry : manifest.entries) {
    CGKGR_CHECK_MSG(entry.file.find('/') == std::string::npos,
                    "manifest entry must be a bare file name: %s",
                    entry.file.c_str());
    contents += StrFormat("%s %lld %a\n", entry.file.c_str(),
                          static_cast<long long>(entry.epoch), entry.metric);
  }
  return AtomicWriteFile(dir + "/" + kManifestName, contents);
}

Status ApplyRetention(const std::string& dir, Manifest* manifest,
                      const RetentionOptions& options) {
  CGKGR_CHECK(manifest != nullptr);
  if (options.keep_last <= 0 ||
      static_cast<int64_t>(manifest->entries.size()) <= options.keep_last) {
    return Status::OK();
  }
  size_t best = 0;
  for (size_t i = 1; i < manifest->entries.size(); ++i) {
    if (manifest->entries[i].metric > manifest->entries[best].metric) {
      best = i;
    }
  }
  const size_t first_kept =
      manifest->entries.size() - static_cast<size_t>(options.keep_last);
  std::vector<ManifestEntry> kept;
  std::vector<std::string> dropped;
  for (size_t i = 0; i < manifest->entries.size(); ++i) {
    if (i >= first_kept || (options.keep_best && i == best)) {
      kept.push_back(manifest->entries[i]);
    } else {
      dropped.push_back(manifest->entries[i].file);
    }
  }
  manifest->entries = std::move(kept);
  // Manifest first, files second: a crash between the two leaves orphan
  // files (harmless, swept next time), never a manifest row with no file.
  CGKGR_RETURN_NOT_OK(WriteManifest(dir, *manifest));
  for (const std::string& file : dropped) {
    if (std::remove((dir + "/" + file).c_str()) != 0) {
      CGKGR_LOG(Warning) << "checkpoint retention could not remove "
                         << dir << "/" << file;
    }
  }
  return Status::OK();
}

Result<Reader> OpenLatestValid(const std::string& dir, ManifestEntry* entry) {
  static obs::Counter* invalid_skipped =
      obs::MetricsRegistry::Default().GetCounter("ckpt_invalid_skipped_total");
  Result<Manifest> manifest = ReadManifest(dir);
  if (!manifest.ok()) return manifest.status();
  const std::vector<ManifestEntry>& entries = manifest.value().entries;
  for (size_t i = entries.size(); i > 0; --i) {
    const ManifestEntry& candidate = entries[i - 1];
    Result<Reader> reader = Reader::Open(dir + "/" + candidate.file);
    if (reader.ok()) {
      if (entry != nullptr) *entry = candidate;
      return reader;
    }
    invalid_skipped->Increment();
    CGKGR_LOG(Warning) << "skipping invalid checkpoint "
                       << Kv("file", dir + "/" + candidate.file)
                       << Kv("error", reader.status().ToString());
  }
  return Status::NotFound("no valid checkpoint in " + dir + " (" +
                          std::to_string(entries.size()) +
                          " manifest entries, all invalid)");
}

void WriteParameterStore(const nn::ParameterStore& store, Writer* writer) {
  CGKGR_CHECK(writer != nullptr);
  writer->BeginSection("params");
  const std::vector<std::string> names = store.Names();
  const std::vector<autograd::Variable>& parameters = store.parameters();
  writer->WriteU64(parameters.size());
  for (size_t p = 0; p < parameters.size(); ++p) {
    writer->WriteString(names[p]);
    writer->WriteTensor(parameters[p].value());
  }
}

Status ReadParameterStore(Reader* reader, nn::ParameterStore* store) {
  CGKGR_CHECK(reader != nullptr && store != nullptr);
  CGKGR_RETURN_NOT_OK(reader->ExpectSection("params"));
  uint64_t count = 0;
  CGKGR_RETURN_NOT_OK(reader->ReadU64(&count));
  if (count != store->parameters().size()) {
    return Status::InvalidArgument(StrFormat(
        "parameter count mismatch: checkpoint has %llu, store has %zu",
        static_cast<unsigned long long>(count), store->parameters().size()));
  }
  const std::vector<std::string> names = store->Names();
  for (uint64_t p = 0; p < count; ++p) {
    std::string name;
    CGKGR_RETURN_NOT_OK(reader->ReadString(&name));
    if (name != names[static_cast<size_t>(p)]) {
      return Status::InvalidArgument(StrFormat(
          "parameter order mismatch at index %llu: checkpoint has \"%s\", "
          "store has \"%s\"", static_cast<unsigned long long>(p),
          name.c_str(), names[static_cast<size_t>(p)].c_str()));
    }
    tensor::Tensor value;
    CGKGR_RETURN_NOT_OK(reader->ReadTensor(&value));
    autograd::Variable param = store->Get(name);
    if (value.shape() != param.value().shape()) {
      return Status::InvalidArgument(
          StrFormat("shape mismatch for \"%s\": checkpoint %s, store %s",
                    name.c_str(), value.ShapeString().c_str(),
                    param.value().ShapeString().c_str()));
    }
    tensor::Tensor& dst = *param.mutable_value();
    std::copy(value.data(), value.data() + value.size(), dst.data());
  }
  return Status::OK();
}

void WriteRngState(const Rng& rng, Writer* writer) {
  CGKGR_CHECK(writer != nullptr);
  const RngState state = rng.SaveState();
  for (const uint64_t word : state.words) writer->WriteU64(word);
  writer->WriteBool(state.has_cached_normal);
  writer->WriteF32(state.cached_normal);
}

Status ReadRngState(Reader* reader, Rng* rng) {
  CGKGR_CHECK(reader != nullptr && rng != nullptr);
  RngState state;
  for (uint64_t& word : state.words) {
    CGKGR_RETURN_NOT_OK(reader->ReadU64(&word));
  }
  CGKGR_RETURN_NOT_OK(reader->ReadBool(&state.has_cached_normal));
  CGKGR_RETURN_NOT_OK(reader->ReadF32(&state.cached_normal));
  rng->RestoreState(state);
  return Status::OK();
}

void InstallShutdownHandler() {
  std::signal(SIGINT, ShutdownSignalHandler);
  std::signal(SIGTERM, ShutdownSignalHandler);
}

bool ShutdownRequested() {
  return g_shutdown_requested.load(std::memory_order_relaxed);
}

void RequestShutdown() {
  g_shutdown_requested.store(true, std::memory_order_relaxed);
}

void ClearShutdownRequest() {
  g_shutdown_requested.store(false, std::memory_order_relaxed);
}

}  // namespace ckpt
}  // namespace cgkgr
