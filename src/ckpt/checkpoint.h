#ifndef CGKGR_CKPT_CHECKPOINT_H_
#define CGKGR_CKPT_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/io.h"
#include "common/rng.h"
#include "common/status.h"
#include "nn/parameter.h"

namespace cgkgr {
namespace ckpt {

/// One published checkpoint as recorded in the directory MANIFEST.
struct ManifestEntry {
  /// File name within the checkpoint directory (no path separators).
  std::string file;
  /// 1-based training epoch the checkpoint captured.
  int64_t epoch = 0;
  /// Best eval metric observed up to that epoch (drives keep_best).
  double metric = 0.0;
};

/// The MANIFEST of a checkpoint directory: an append-ordered list of the
/// currently retained checkpoints, rewritten atomically after every
/// publish. Readers trust only the manifest (a file present on disk but
/// absent from the manifest is an unpublished orphan — e.g. the process
/// died between the checkpoint rename and the manifest rename — and is
/// ignored until retention sweeps it).
struct Manifest {
  std::vector<ManifestEntry> entries;
};

/// Name of the manifest file inside a checkpoint directory.
inline constexpr char kManifestName[] = "MANIFEST";

/// Parses `dir`/MANIFEST. NotFound when the directory has no manifest yet;
/// InvalidArgument on a malformed one.
Result<Manifest> ReadManifest(const std::string& dir);

/// Atomically rewrites `dir`/MANIFEST.
Status WriteManifest(const std::string& dir, const Manifest& manifest);

/// Retention knobs for ApplyRetention.
struct RetentionOptions {
  /// Keep this many newest checkpoints (by manifest order). <= 0 keeps all.
  int64_t keep_last = 3;
  /// Additionally keep the entry with the best (highest) metric.
  bool keep_best = true;
};

/// Drops manifest entries outside the retention window, rewrites the
/// manifest, then unlinks the dropped files (in that order, so a crash
/// mid-sweep never leaves the manifest pointing at a deleted file).
Status ApplyRetention(const std::string& dir, Manifest* manifest,
                      const RetentionOptions& options);

/// Opens the newest manifest-listed checkpoint that validates, scanning
/// backwards. Corrupt/missing entries (torn writes, stale manifest rows)
/// are skipped with a logged warning and counted in the
/// `ckpt_invalid_skipped_total` metric — corruption degrades to an older
/// checkpoint, never a crash. NotFound when the directory has no manifest
/// or no entry validates. On success `*entry` is the winning row.
Result<Reader> OpenLatestValid(const std::string& dir, ManifestEntry* entry);

/// Writes every parameter of `store` (count, then name/tensor pairs in
/// creation order) as one "params" section.
void WriteParameterStore(const nn::ParameterStore& store, Writer* writer);

/// Restores a "params" section into `store`, validating parameter count,
/// names, and shapes. The store must already be built identically (same
/// model construction/Prepare path).
Status ReadParameterStore(Reader* reader, nn::ParameterStore* store);

/// Serializes an Rng's full state (xoshiro words + Box-Muller cache).
void WriteRngState(const Rng& rng, Writer* writer);

/// Restores state written by WriteRngState.
Status ReadRngState(Reader* reader, Rng* rng);

/// --- clean-shutdown signal -------------------------------------------
///
/// Training loops poll ShutdownRequested() at epoch boundaries: when set,
/// they publish a final checkpoint and return cleanly (TrainStats::
/// interrupted) instead of dying mid-epoch. InstallShutdownHandler routes
/// SIGINT/SIGTERM into the flag (signal-safe: the handler only stores an
/// atomic). Tests drive the flag directly via RequestShutdown/
/// ClearShutdownRequest.

void InstallShutdownHandler();
bool ShutdownRequested();
void RequestShutdown();
void ClearShutdownRequest();

}  // namespace ckpt
}  // namespace cgkgr

#endif  // CGKGR_CKPT_CHECKPOINT_H_
