#include "ckpt/io.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <utility>

#include "common/macros.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "obs/metrics.h"

namespace cgkgr {
namespace ckpt {

namespace {

/// Record type tags. The values are part of the on-disk format; append new
/// tags, never renumber.
enum Tag : uint8_t {
  kTagU64 = 1,
  kTagI64 = 2,
  kTagF32 = 3,
  kTagF64 = 4,
  kTagBool = 5,
  kTagString = 6,
  kTagFloats = 7,
  kTagDoubles = 8,
  kTagI64s = 9,
  kTagTensor = 10,
  kTagSection = 11,
};

const char* TagName(uint8_t tag) {
  switch (tag) {
    case kTagU64: return "u64";
    case kTagI64: return "i64";
    case kTagF32: return "f32";
    case kTagF64: return "f64";
    case kTagBool: return "bool";
    case kTagString: return "string";
    case kTagFloats: return "floats";
    case kTagDoubles: return "doubles";
    case kTagI64s: return "i64s";
    case kTagTensor: return "tensor";
    case kTagSection: return "section";
    default: return "unknown";
  }
}

/// Frame layout constants; see io.h for the spec.
constexpr size_t kHeaderSize = sizeof(kCkptMagic) + sizeof(uint32_t);
constexpr size_t kFooterSize =
    sizeof(uint64_t) + sizeof(uint32_t) + sizeof(kCkptTail);

void AppendRaw(std::string* buf, const void* data, size_t size) {
  buf->append(static_cast<const char*>(data), size);
}

std::string DirName(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

/// Syncs the directory entry so the rename itself is durable. Best-effort:
/// some filesystems reject directory fsync; the rename is already atomic.
void FsyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

/// POSIX write-all loop (write may be partial).
Status WriteAll(int fd, const char* data, size_t size,
                const std::string& path) {
  size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      return Status::IOError("write failed for " + path + ": " +
                             std::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

uint32_t Crc32(const void* data, size_t size) {
  // Table-driven IEEE CRC-32 (reflected, polynomial 0xEDB88320).
  static const uint32_t* kTable = [] {
    static uint32_t table[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      table[i] = c;
    }
    return table;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    crc = kTable[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void Writer::BeginSection(const std::string& name) {
  const uint8_t tag = kTagSection;
  AppendRaw(&payload_, &tag, 1);
  const uint64_t size = name.size();
  AppendRaw(&payload_, &size, sizeof(size));
  payload_.append(name);
}

void Writer::WriteU64(uint64_t value) {
  const uint8_t tag = kTagU64;
  AppendRaw(&payload_, &tag, 1);
  AppendRaw(&payload_, &value, sizeof(value));
}

void Writer::WriteI64(int64_t value) {
  const uint8_t tag = kTagI64;
  AppendRaw(&payload_, &tag, 1);
  AppendRaw(&payload_, &value, sizeof(value));
}

void Writer::WriteF32(float value) {
  const uint8_t tag = kTagF32;
  AppendRaw(&payload_, &tag, 1);
  AppendRaw(&payload_, &value, sizeof(value));
}

void Writer::WriteF64(double value) {
  const uint8_t tag = kTagF64;
  AppendRaw(&payload_, &tag, 1);
  AppendRaw(&payload_, &value, sizeof(value));
}

void Writer::WriteBool(bool value) {
  const uint8_t tag = kTagBool;
  AppendRaw(&payload_, &tag, 1);
  const uint8_t byte = value ? 1 : 0;
  AppendRaw(&payload_, &byte, 1);
}

void Writer::WriteString(const std::string& value) {
  const uint8_t tag = kTagString;
  AppendRaw(&payload_, &tag, 1);
  const uint64_t size = value.size();
  AppendRaw(&payload_, &size, sizeof(size));
  payload_.append(value);
}

void Writer::WriteFloats(const float* data, int64_t count) {
  CGKGR_CHECK(count >= 0 && (data != nullptr || count == 0));
  const uint8_t tag = kTagFloats;
  AppendRaw(&payload_, &tag, 1);
  const uint64_t size = static_cast<uint64_t>(count);
  AppendRaw(&payload_, &size, sizeof(size));
  AppendRaw(&payload_, data, static_cast<size_t>(count) * sizeof(float));
}

void Writer::WriteDoubles(const std::vector<double>& values) {
  const uint8_t tag = kTagDoubles;
  AppendRaw(&payload_, &tag, 1);
  const uint64_t size = values.size();
  AppendRaw(&payload_, &size, sizeof(size));
  AppendRaw(&payload_, values.data(), values.size() * sizeof(double));
}

void Writer::WriteI64s(const std::vector<int64_t>& values) {
  const uint8_t tag = kTagI64s;
  AppendRaw(&payload_, &tag, 1);
  const uint64_t size = values.size();
  AppendRaw(&payload_, &size, sizeof(size));
  AppendRaw(&payload_, values.data(), values.size() * sizeof(int64_t));
}

void Writer::WriteTensor(const tensor::Tensor& value) {
  const uint8_t tag = kTagTensor;
  AppendRaw(&payload_, &tag, 1);
  const uint64_t rank = static_cast<uint64_t>(value.rank());
  AppendRaw(&payload_, &rank, sizeof(rank));
  for (int d = 0; d < value.rank(); ++d) {
    const int64_t dim = value.dim(d);
    AppendRaw(&payload_, &dim, sizeof(dim));
  }
  AppendRaw(&payload_, value.data(),
            static_cast<size_t>(value.size()) * sizeof(float));
}

std::string Writer::FramedBytes() const {
  std::string framed;
  framed.reserve(kHeaderSize + payload_.size() + kFooterSize);
  AppendRaw(&framed, kCkptMagic, sizeof(kCkptMagic));
  const uint32_t version = kCkptVersion;
  AppendRaw(&framed, &version, sizeof(version));
  framed.append(payload_);
  const uint64_t payload_size = payload_.size();
  AppendRaw(&framed, &payload_size, sizeof(payload_size));
  // CRC covers header + payload (everything before the footer).
  const uint32_t crc = Crc32(framed.data(), kHeaderSize + payload_.size());
  AppendRaw(&framed, &crc, sizeof(crc));
  AppendRaw(&framed, kCkptTail, sizeof(kCkptTail));
  return framed;
}

Status Writer::Commit(const std::string& path) const {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
  static obs::Counter* writes_total =
      registry.GetCounter("ckpt_writes_total");
  static obs::Counter* write_bytes_total =
      registry.GetCounter("ckpt_write_bytes_total");
  static obs::Counter* write_failures_total =
      registry.GetCounter("ckpt_write_failures_total");
  static obs::Histogram* commit_micros =
      registry.GetHistogram("ckpt_commit_micros");
  WallTimer timer;

  const std::string framed = FramedBytes();
  const std::string tmp =
      StrFormat("%s.tmp.%d", path.c_str(), static_cast<int>(::getpid()));
  Status status = Status::OK();
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    status = Status::IOError("cannot open " + tmp + " for writing: " +
                             std::strerror(errno));
  } else {
    status = WriteAll(fd, framed.data(), framed.size(), tmp);
    if (status.ok() && ::fsync(fd) != 0) {
      status = Status::IOError("fsync failed for " + tmp + ": " +
                               std::strerror(errno));
    }
    ::close(fd);
  }
  if (status.ok() && ::rename(tmp.c_str(), path.c_str()) != 0) {
    status = Status::IOError("rename " + tmp + " -> " + path + " failed: " +
                             std::strerror(errno));
  }
  if (!status.ok()) {
    ::unlink(tmp.c_str());
    write_failures_total->Increment();
    return status;
  }
  FsyncDir(DirName(path));
  writes_total->Increment();
  write_bytes_total->Increment(static_cast<int64_t>(framed.size()));
  commit_micros->Record(timer.ElapsedMillis() * 1e3);
  return Status::OK();
}

Result<Reader> Reader::Open(const std::string& path) {
  Result<std::string> framed = ReadFileToString(path);
  if (!framed.ok()) return framed.status();
  return FromFramedBytes(std::move(framed).value(), path);
}

Result<Reader> Reader::FromFramedBytes(const std::string& framed,
                                       const std::string& origin) {
  if (framed.size() < kHeaderSize + kFooterSize) {
    return Status::IOError(StrFormat(
        "%s: truncated checkpoint (%zu bytes, frame needs at least %zu)",
        origin.c_str(), framed.size(), kHeaderSize + kFooterSize));
  }
  if (std::memcmp(framed.data(), kCkptMagic, sizeof(kCkptMagic)) != 0) {
    return Status::InvalidArgument(origin + ": bad checkpoint magic");
  }
  uint32_t version = 0;
  std::memcpy(&version, framed.data() + sizeof(kCkptMagic), sizeof(version));
  if (version != kCkptVersion) {
    return Status::InvalidArgument(
        StrFormat("%s: unsupported checkpoint version %u (expected %u)",
                  origin.c_str(), version, kCkptVersion));
  }
  const char* footer = framed.data() + framed.size() - kFooterSize;
  uint64_t payload_size = 0;
  std::memcpy(&payload_size, footer, sizeof(payload_size));
  if (payload_size != framed.size() - kHeaderSize - kFooterSize) {
    return Status::IOError(StrFormat(
        "%s: checkpoint size mismatch (footer says %llu payload bytes, file "
        "has %zu) — truncated or trailing garbage",
        origin.c_str(), static_cast<unsigned long long>(payload_size),
        framed.size() - kHeaderSize - kFooterSize));
  }
  if (std::memcmp(footer + sizeof(uint64_t) + sizeof(uint32_t), kCkptTail,
                  sizeof(kCkptTail)) != 0) {
    return Status::IOError(origin + ": checkpoint footer corrupt (bad tail)");
  }
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, footer + sizeof(uint64_t), sizeof(stored_crc));
  const uint32_t actual_crc =
      Crc32(framed.data(), kHeaderSize + static_cast<size_t>(payload_size));
  if (stored_crc != actual_crc) {
    return Status::IOError(StrFormat(
        "%s: checkpoint CRC mismatch (stored %08x, computed %08x)",
        origin.c_str(), stored_crc, actual_crc));
  }
  Reader reader;
  reader.origin_ = origin;
  reader.payload_.assign(framed.data() + kHeaderSize,
                         static_cast<size_t>(payload_size));
  reader.pos_ = 0;
  return reader;
}

Status Reader::ReadRaw(void* out, size_t size, const char* what) {
  if (payload_.size() - pos_ < size) {
    return Status::IOError(StrFormat(
        "%s: truncated record: %zu bytes left at offset %zu, %s needs %zu",
        origin_.c_str(), payload_.size() - pos_, pos_, what, size));
  }
  std::memcpy(out, payload_.data() + pos_, size);
  pos_ += size;
  return Status::OK();
}

Status Reader::ReadTag(uint8_t expected, const char* what) {
  uint8_t tag = 0;
  CGKGR_RETURN_NOT_OK(ReadRaw(&tag, 1, what));
  if (tag != expected) {
    return Status::InvalidArgument(StrFormat(
        "%s: record type mismatch at offset %zu: expected %s, found %s — "
        "reader out of sync with writer", origin_.c_str(), pos_ - 1,
        TagName(expected), TagName(tag)));
  }
  return Status::OK();
}

Status Reader::ReadCount(size_t elem_size, const char* what, uint64_t* count) {
  CGKGR_RETURN_NOT_OK(ReadRaw(count, sizeof(*count), what));
  if (*count > (payload_.size() - pos_) / elem_size) {
    return Status::IOError(StrFormat(
        "%s: oversized %s record: %llu elements but only %zu payload bytes "
        "remain", origin_.c_str(), what,
        static_cast<unsigned long long>(*count), payload_.size() - pos_));
  }
  return Status::OK();
}

Status Reader::ExpectSection(const std::string& name) {
  CGKGR_RETURN_NOT_OK(ReadTag(kTagSection, "section"));
  uint64_t size = 0;
  CGKGR_RETURN_NOT_OK(ReadCount(1, "section name", &size));
  std::string found(payload_.data() + pos_, static_cast<size_t>(size));
  pos_ += static_cast<size_t>(size);
  if (found != name) {
    return Status::InvalidArgument(
        StrFormat("%s: expected section \"%s\", found \"%s\"",
                  origin_.c_str(), name.c_str(), found.c_str()));
  }
  return Status::OK();
}

Status Reader::ReadU64(uint64_t* value) {
  CGKGR_CHECK(value != nullptr);
  CGKGR_RETURN_NOT_OK(ReadTag(kTagU64, "u64"));
  return ReadRaw(value, sizeof(*value), "u64");
}

Status Reader::ReadI64(int64_t* value) {
  CGKGR_CHECK(value != nullptr);
  CGKGR_RETURN_NOT_OK(ReadTag(kTagI64, "i64"));
  return ReadRaw(value, sizeof(*value), "i64");
}

Status Reader::ReadF32(float* value) {
  CGKGR_CHECK(value != nullptr);
  CGKGR_RETURN_NOT_OK(ReadTag(kTagF32, "f32"));
  return ReadRaw(value, sizeof(*value), "f32");
}

Status Reader::ReadF64(double* value) {
  CGKGR_CHECK(value != nullptr);
  CGKGR_RETURN_NOT_OK(ReadTag(kTagF64, "f64"));
  return ReadRaw(value, sizeof(*value), "f64");
}

Status Reader::ReadBool(bool* value) {
  CGKGR_CHECK(value != nullptr);
  CGKGR_RETURN_NOT_OK(ReadTag(kTagBool, "bool"));
  uint8_t byte = 0;
  CGKGR_RETURN_NOT_OK(ReadRaw(&byte, 1, "bool"));
  if (byte > 1) {
    return Status::InvalidArgument(
        StrFormat("%s: corrupt bool record (value %u)", origin_.c_str(),
                  static_cast<unsigned>(byte)));
  }
  *value = byte == 1;
  return Status::OK();
}

Status Reader::ReadString(std::string* value) {
  CGKGR_CHECK(value != nullptr);
  CGKGR_RETURN_NOT_OK(ReadTag(kTagString, "string"));
  uint64_t size = 0;
  CGKGR_RETURN_NOT_OK(ReadCount(1, "string", &size));
  value->assign(payload_.data() + pos_, static_cast<size_t>(size));
  pos_ += static_cast<size_t>(size);
  return Status::OK();
}

Status Reader::ReadFloats(std::vector<float>* values) {
  CGKGR_CHECK(values != nullptr);
  CGKGR_RETURN_NOT_OK(ReadTag(kTagFloats, "floats"));
  uint64_t count = 0;
  CGKGR_RETURN_NOT_OK(ReadCount(sizeof(float), "floats", &count));
  values->resize(static_cast<size_t>(count));
  return ReadRaw(values->data(), static_cast<size_t>(count) * sizeof(float),
                 "floats");
}

Status Reader::ReadDoubles(std::vector<double>* values) {
  CGKGR_CHECK(values != nullptr);
  CGKGR_RETURN_NOT_OK(ReadTag(kTagDoubles, "doubles"));
  uint64_t count = 0;
  CGKGR_RETURN_NOT_OK(ReadCount(sizeof(double), "doubles", &count));
  values->resize(static_cast<size_t>(count));
  return ReadRaw(values->data(), static_cast<size_t>(count) * sizeof(double),
                 "doubles");
}

Status Reader::ReadI64s(std::vector<int64_t>* values) {
  CGKGR_CHECK(values != nullptr);
  CGKGR_RETURN_NOT_OK(ReadTag(kTagI64s, "i64s"));
  uint64_t count = 0;
  CGKGR_RETURN_NOT_OK(ReadCount(sizeof(int64_t), "i64s", &count));
  values->resize(static_cast<size_t>(count));
  return ReadRaw(values->data(), static_cast<size_t>(count) * sizeof(int64_t),
                 "i64s");
}

Status Reader::ReadTensor(tensor::Tensor* value) {
  CGKGR_CHECK(value != nullptr);
  CGKGR_RETURN_NOT_OK(ReadTag(kTagTensor, "tensor"));
  uint64_t rank = 0;
  CGKGR_RETURN_NOT_OK(ReadCount(sizeof(int64_t), "tensor shape", &rank));
  std::vector<int64_t> shape(static_cast<size_t>(rank));
  CGKGR_RETURN_NOT_OK(ReadRaw(shape.data(), shape.size() * sizeof(int64_t),
                              "tensor shape"));
  int64_t volume = 1;
  for (const int64_t dim : shape) {
    if (dim < 0 ||
        (dim > 0 && volume > static_cast<int64_t>(payload_.size()) / dim)) {
      return Status::IOError(origin_ + ": corrupt tensor shape");
    }
    volume *= dim;
  }
  if (static_cast<uint64_t>(volume) >
      (payload_.size() - pos_) / sizeof(float)) {
    return Status::IOError(StrFormat(
        "%s: oversized tensor record: shape wants %lld floats but only %zu "
        "payload bytes remain", origin_.c_str(),
        static_cast<long long>(volume), payload_.size() - pos_));
  }
  tensor::Tensor result(shape);
  CGKGR_RETURN_NOT_OK(ReadRaw(
      result.data(), static_cast<size_t>(volume) * sizeof(float), "tensor"));
  *value = std::move(result);
  return Status::OK();
}

Status AtomicWriteFile(const std::string& path, const std::string& contents) {
  const std::string tmp =
      StrFormat("%s.tmp.%d", path.c_str(), static_cast<int>(::getpid()));
  Status status = Status::OK();
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IOError("cannot open " + tmp + " for writing: " +
                           std::strerror(errno));
  }
  status = WriteAll(fd, contents.data(), contents.size(), tmp);
  if (status.ok() && ::fsync(fd) != 0) {
    status = Status::IOError("fsync failed for " + tmp + ": " +
                             std::strerror(errno));
  }
  ::close(fd);
  if (status.ok() && ::rename(tmp.c_str(), path.c_str()) != 0) {
    status = Status::IOError("rename " + tmp + " -> " + path + " failed: " +
                             std::strerror(errno));
  }
  if (!status.ok()) {
    ::unlink(tmp.c_str());
    return status;
  }
  FsyncDir(DirName(path));
  return Status::OK();
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  if (in.bad()) return Status::IOError("read failed: " + path);
  return contents;
}

Result<std::vector<std::string>> ListFilesWithSuffixes(
    const std::string& dir, const std::vector<std::string>& suffixes) {
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) {
    return Status::NotFound("cannot open directory " + dir + ": " +
                            std::strerror(errno));
  }
  std::vector<std::string> names;
  for (struct dirent* entry = ::readdir(handle); entry != nullptr;
       entry = ::readdir(handle)) {
    const std::string name = entry->d_name;
    for (const std::string& suffix : suffixes) {
      if (name.size() >= suffix.size() &&
          name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
              0) {
        names.push_back(name);
        break;
      }
    }
  }
  ::closedir(handle);
  std::sort(names.begin(), names.end());
  return names;
}

Result<std::vector<std::string>> ListFilesWithSuffix(
    const std::string& dir, const std::string& suffix) {
  return ListFilesWithSuffixes(dir, {suffix});
}

}  // namespace ckpt
}  // namespace cgkgr
