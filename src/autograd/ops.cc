#include "autograd/ops.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/macros.h"
#include "tensor/tensor_ops.h"

namespace cgkgr {
namespace autograd {

namespace {

/// Accumulates `src` into the grad sink of `input` if that input requires
/// grad. Like every backward function here, the write goes through
/// GradAccumulator so per-shard sinks (GradSinkGuard) are honored.
void AccumulateInto(const NodePtr& input, const float* src, int64_t n) {
  if (!input->requires_grad) return;
  tensor::Axpy(n, 1.0f, src, GradAccumulator(input.get()).data());
}

}  // namespace

Variable Constant(tensor::Tensor value) {
  return Variable(std::move(value), /*requires_grad=*/false);
}

Variable Gather(const Variable& table, std::vector<int64_t> indices) {
  const tensor::Tensor& t = table.value();
  CGKGR_CHECK_MSG(t.rank() == 2, "Gather table must be rank-2, got %s",
                  t.ShapeString().c_str());
  const int64_t rows = t.dim(0);
  const int64_t d = t.dim(1);
  const int64_t n = static_cast<int64_t>(indices.size());
  tensor::Tensor out({n, d});
  for (int64_t i = 0; i < n; ++i) {
    const int64_t row = indices[static_cast<size_t>(i)];
    CGKGR_CHECK_MSG(row >= 0 && row < rows, "Gather index %lld out of [0, %lld)",
                    static_cast<long long>(row), static_cast<long long>(rows));
    std::copy_n(t.data() + row * d, d, out.data() + i * d);
  }
  auto idx = std::make_shared<std::vector<int64_t>>(std::move(indices));
  return MakeOpResult(
      "Gather", std::move(out), {table}, [idx, d](Node* node) {
        const NodePtr& table_node = node->inputs[0];
        if (!table_node->requires_grad) return;
        const float* g = node->grad.data();
        float* tg = GradAccumulator(table_node.get()).data();
        const int64_t n = static_cast<int64_t>(idx->size());
        for (int64_t i = 0; i < n; ++i) {
          tensor::Axpy(d, 1.0f, g + i * d,
                       tg + (*idx)[static_cast<size_t>(i)] * d);
        }
      });
}

Variable RowRepeat(const Variable& x, int64_t times) {
  const tensor::Tensor& t = x.value();
  CGKGR_CHECK(t.rank() == 2 && times >= 1);
  const int64_t n = t.dim(0);
  const int64_t d = t.dim(1);
  tensor::Tensor out({n * times, d});
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < times; ++j) {
      std::copy_n(t.data() + i * d, d, out.data() + (i * times + j) * d);
    }
  }
  return MakeOpResult(
      "RowRepeat", std::move(out), {x}, [n, d, times](Node* node) {
        const NodePtr& input = node->inputs[0];
        if (!input->requires_grad) return;
        const float* g = node->grad.data();
        float* xg = GradAccumulator(input.get()).data();
        for (int64_t i = 0; i < n; ++i) {
          for (int64_t j = 0; j < times; ++j) {
            tensor::Axpy(d, 1.0f, g + (i * times + j) * d, xg + i * d);
          }
        }
      });
}

Variable MatMul(const Variable& a, const Variable& b) {
  const tensor::Tensor& ta = a.value();
  const tensor::Tensor& tb = b.value();
  CGKGR_CHECK(ta.rank() == 2 && tb.rank() == 2);
  const int64_t m = ta.dim(0);
  const int64_t k = ta.dim(1);
  const int64_t n = tb.dim(1);
  CGKGR_CHECK_MSG(tb.dim(0) == k, "MatMul inner dims mismatch: %s x %s",
                  ta.ShapeString().c_str(), tb.ShapeString().c_str());
  tensor::Tensor out({m, n});
  tensor::Gemm(false, false, m, n, k, 1.0f, ta.data(), tb.data(), 0.0f,
               out.data());
  return MakeOpResult(
      "MatMul", std::move(out), {a, b}, [m, n, k](Node* node) {
        // Both backward Gemms accumulate (beta=1) into grad buffers that
        // other ops also feed; bit-identity relies on tensor::Gemm's fixed
        // per-element association (docs/kernels.md), not on this call site.
        const NodePtr& na = node->inputs[0];
        const NodePtr& nb = node->inputs[1];
        const float* g = node->grad.data();
        if (na->requires_grad) {
          // dA += G * B^T : (m,n) x (n,k)
          tensor::Gemm(false, true, m, k, n, 1.0f, g, nb->value.data(), 1.0f,
                       GradAccumulator(na.get()).data());
        }
        if (nb->requires_grad) {
          // dB += A^T * G : (k,m) x (m,n)
          tensor::Gemm(true, false, k, n, m, 1.0f, na->value.data(), g, 1.0f,
                       GradAccumulator(nb.get()).data());
        }
      });
}

Variable Add(const Variable& a, const Variable& b) {
  CGKGR_CHECK(a.value().SameShape(b.value()));
  const int64_t n = a.value().size();
  tensor::Tensor out(a.value().shape());
  tensor::Add(n, a.value().data(), b.value().data(), out.data());
  return MakeOpResult("Add", std::move(out), {a, b}, [n](Node* node) {
    AccumulateInto(node->inputs[0], node->grad.data(), n);
    AccumulateInto(node->inputs[1], node->grad.data(), n);
  });
}

Variable Sub(const Variable& a, const Variable& b) {
  CGKGR_CHECK(a.value().SameShape(b.value()));
  const int64_t n = a.value().size();
  tensor::Tensor out(a.value().shape());
  tensor::Sub(n, a.value().data(), b.value().data(), out.data());
  return MakeOpResult("Sub", std::move(out), {a, b}, [n](Node* node) {
    AccumulateInto(node->inputs[0], node->grad.data(), n);
    const NodePtr& nb = node->inputs[1];
    if (nb->requires_grad) {
      tensor::Axpy(n, -1.0f, node->grad.data(),
                   GradAccumulator(nb.get()).data());
    }
  });
}

Variable Mul(const Variable& a, const Variable& b) {
  CGKGR_CHECK(a.value().SameShape(b.value()));
  const int64_t n = a.value().size();
  tensor::Tensor out(a.value().shape());
  tensor::Mul(n, a.value().data(), b.value().data(), out.data());
  return MakeOpResult("Mul", std::move(out), {a, b}, [n](Node* node) {
    const NodePtr& na = node->inputs[0];
    const NodePtr& nb = node->inputs[1];
    const float* g = node->grad.data();
    if (na->requires_grad) {
      const float* bv = nb->value.data();
      float* ag = GradAccumulator(na.get()).data();
      for (int64_t i = 0; i < n; ++i) ag[i] += g[i] * bv[i];
    }
    if (nb->requires_grad) {
      const float* av = na->value.data();
      float* bg = GradAccumulator(nb.get()).data();
      for (int64_t i = 0; i < n; ++i) bg[i] += g[i] * av[i];
    }
  });
}

Variable AddRowBias(const Variable& x, const Variable& b) {
  const tensor::Tensor& tx = x.value();
  const tensor::Tensor& tb = b.value();
  CGKGR_CHECK(tx.rank() == 2 && tb.rank() == 1 && tb.dim(0) == tx.dim(1));
  const int64_t rows = tx.dim(0);
  const int64_t cols = tx.dim(1);
  tensor::Tensor out = tx.Clone();
  tensor::AddRowVector(rows, cols, tb.data(), out.data());
  return MakeOpResult(
      "AddRowBias", std::move(out), {x, b}, [rows, cols](Node* node) {
        AccumulateInto(node->inputs[0], node->grad.data(), rows * cols);
        const NodePtr& nb = node->inputs[1];
        if (nb->requires_grad) {
          const float* g = node->grad.data();
          float* bg = GradAccumulator(nb.get()).data();
          for (int64_t r = 0; r < rows; ++r) {
            tensor::Axpy(cols, 1.0f, g + r * cols, bg);
          }
        }
      });
}

Variable RowDot(const Variable& a, const Variable& b) {
  const tensor::Tensor& ta = a.value();
  CGKGR_CHECK(ta.rank() == 2 && ta.SameShape(b.value()));
  const int64_t rows = ta.dim(0);
  const int64_t cols = ta.dim(1);
  tensor::Tensor out({rows});
  tensor::RowDot(rows, cols, ta.data(), b.value().data(), out.data());
  return MakeOpResult(
      "RowDot", std::move(out), {a, b}, [rows, cols](Node* node) {
        const NodePtr& na = node->inputs[0];
        const NodePtr& nb = node->inputs[1];
        const float* g = node->grad.data();
        if (na->requires_grad) {
          float* ag = GradAccumulator(na.get()).data();
          for (int64_t r = 0; r < rows; ++r) {
            tensor::Axpy(cols, g[r], nb->value.data() + r * cols,
                         ag + r * cols);
          }
        }
        if (nb->requires_grad) {
          float* bg = GradAccumulator(nb.get()).data();
          for (int64_t r = 0; r < rows; ++r) {
            tensor::Axpy(cols, g[r], na->value.data() + r * cols,
                         bg + r * cols);
          }
        }
      });
}

Variable RowScale(const Variable& x, const Variable& s) {
  const tensor::Tensor& tx = x.value();
  const tensor::Tensor& ts = s.value();
  CGKGR_CHECK(tx.rank() == 2 && ts.rank() == 1 && ts.dim(0) == tx.dim(0));
  const int64_t rows = tx.dim(0);
  const int64_t cols = tx.dim(1);
  tensor::Tensor out({rows, cols});
  tensor::RowScale(rows, cols, tx.data(), ts.data(), out.data());
  return MakeOpResult(
      "RowScale", std::move(out), {x, s}, [rows, cols](Node* node) {
        const NodePtr& nx = node->inputs[0];
        const NodePtr& ns = node->inputs[1];
        const float* g = node->grad.data();
        if (nx->requires_grad) {
          const float* sv = ns->value.data();
          float* xg = GradAccumulator(nx.get()).data();
          for (int64_t r = 0; r < rows; ++r) {
            tensor::Axpy(cols, sv[r], g + r * cols, xg + r * cols);
          }
        }
        if (ns->requires_grad) {
          const float* xv = nx->value.data();
          float* sg = GradAccumulator(ns.get()).data();
          for (int64_t r = 0; r < rows; ++r) {
            sg[r] += tensor::Dot(cols, g + r * cols, xv + r * cols);
          }
        }
      });
}

Variable ConcatCols(const Variable& a, const Variable& b) {
  const tensor::Tensor& ta = a.value();
  const tensor::Tensor& tb = b.value();
  CGKGR_CHECK(ta.rank() == 2 && tb.rank() == 2 && ta.dim(0) == tb.dim(0));
  const int64_t rows = ta.dim(0);
  const int64_t d1 = ta.dim(1);
  const int64_t d2 = tb.dim(1);
  tensor::Tensor out({rows, d1 + d2});
  for (int64_t r = 0; r < rows; ++r) {
    std::copy_n(ta.data() + r * d1, d1, out.data() + r * (d1 + d2));
    std::copy_n(tb.data() + r * d2, d2, out.data() + r * (d1 + d2) + d1);
  }
  return MakeOpResult(
      "ConcatCols", std::move(out), {a, b}, [rows, d1, d2](Node* node) {
        const NodePtr& na = node->inputs[0];
        const NodePtr& nb = node->inputs[1];
        const float* g = node->grad.data();
        if (na->requires_grad) {
          float* ag = GradAccumulator(na.get()).data();
          for (int64_t r = 0; r < rows; ++r) {
            tensor::Axpy(d1, 1.0f, g + r * (d1 + d2), ag + r * d1);
          }
        }
        if (nb->requires_grad) {
          float* bg = GradAccumulator(nb.get()).data();
          for (int64_t r = 0; r < rows; ++r) {
            tensor::Axpy(d2, 1.0f, g + r * (d1 + d2) + d1, bg + r * d2);
          }
        }
      });
}

Variable SegmentSoftmax(const Variable& x, int64_t segment_size) {
  const tensor::Tensor& tx = x.value();
  CGKGR_CHECK(tx.rank() == 1 && segment_size > 0 &&
              tx.dim(0) % segment_size == 0);
  const int64_t segments = tx.dim(0) / segment_size;
  tensor::Tensor out({tx.dim(0)});
  tensor::SegmentSoftmax(segments, segment_size, tx.data(), out.data());
  // The backward closure needs the forward output; keep a handle to it.
  tensor::Tensor y = out;
  return MakeOpResult(
      "SegmentSoftmax", std::move(out), {x},
      [segments, segment_size, y](Node* node) {
        const NodePtr& nx = node->inputs[0];
        if (!nx->requires_grad) return;
        const float* g = node->grad.data();
        const float* yv = y.data();
        float* xg = GradAccumulator(nx.get()).data();
        for (int64_t s = 0; s < segments; ++s) {
          const int64_t base = s * segment_size;
          const float inner =
              tensor::Dot(segment_size, g + base, yv + base);
          for (int64_t i = 0; i < segment_size; ++i) {
            xg[base + i] += yv[base + i] * (g[base + i] - inner);
          }
        }
      });
}

Variable SegmentWeightedSum(const Variable& values, const Variable& weights,
                            int64_t segment_size) {
  const tensor::Tensor& tv = values.value();
  const tensor::Tensor& tw = weights.value();
  CGKGR_CHECK(tv.rank() == 2 && tw.rank() == 1 && tw.dim(0) == tv.dim(0));
  CGKGR_CHECK(segment_size > 0 && tv.dim(0) % segment_size == 0);
  const int64_t segments = tv.dim(0) / segment_size;
  const int64_t d = tv.dim(1);
  tensor::Tensor out({segments, d});
  for (int64_t s = 0; s < segments; ++s) {
    float* o = out.data() + s * d;
    for (int64_t i = 0; i < segment_size; ++i) {
      const int64_t row = s * segment_size + i;
      tensor::Axpy(d, tw[row], tv.data() + row * d, o);
    }
  }
  return MakeOpResult(
      "SegmentWeightedSum", std::move(out), {values, weights},
      [segments, segment_size, d](Node* node) {
        const NodePtr& nv = node->inputs[0];
        const NodePtr& nw = node->inputs[1];
        const float* g = node->grad.data();
        if (nv->requires_grad) {
          const float* wv = nw->value.data();
          float* vg = GradAccumulator(nv.get()).data();
          for (int64_t s = 0; s < segments; ++s) {
            for (int64_t i = 0; i < segment_size; ++i) {
              const int64_t row = s * segment_size + i;
              tensor::Axpy(d, wv[row], g + s * d, vg + row * d);
            }
          }
        }
        if (nw->requires_grad) {
          const float* vv = nv->value.data();
          float* wg = GradAccumulator(nw.get()).data();
          for (int64_t s = 0; s < segments; ++s) {
            for (int64_t i = 0; i < segment_size; ++i) {
              const int64_t row = s * segment_size + i;
              wg[row] += tensor::Dot(d, g + s * d, vv + row * d);
            }
          }
        }
      });
}

namespace {

/// Shared implementation for elementwise activations whose derivative can be
/// expressed from the forward output y.
template <typename Forward, typename BackwardFromOutput>
Variable UnaryFromOutput(const char* op_name, const Variable& x, Forward fwd,
                         BackwardFromOutput dydx) {
  const int64_t n = x.value().size();
  tensor::Tensor out(x.value().shape());
  const float* xv = x.value().data();
  float* ov = out.data();
  for (int64_t i = 0; i < n; ++i) ov[i] = fwd(xv[i]);
  tensor::Tensor y = out;
  return MakeOpResult(op_name, std::move(out), {x}, [n, y, dydx](Node* node) {
    const NodePtr& nx = node->inputs[0];
    if (!nx->requires_grad) return;
    const float* g = node->grad.data();
    const float* yv = y.data();
    float* xg = GradAccumulator(nx.get()).data();
    for (int64_t i = 0; i < n; ++i) xg[i] += g[i] * dydx(yv[i]);
  });
}

}  // namespace

Variable Relu(const Variable& x) {
  return UnaryFromOutput(
      "Relu", x, [](float v) { return v > 0.0f ? v : 0.0f; },
      [](float y) { return y > 0.0f ? 1.0f : 0.0f; });
}

Variable LeakyRelu(const Variable& x, float negative_slope) {
  return UnaryFromOutput(
      "LeakyRelu", x,
      [negative_slope](float v) {
        return v > 0.0f ? v : negative_slope * v;
      },
      [negative_slope](float y) {
        return y > 0.0f ? 1.0f : negative_slope;
      });
}

Variable Tanh(const Variable& x) {
  return UnaryFromOutput(
      "Tanh", x, [](float v) { return std::tanh(v); },
      [](float y) { return 1.0f - y * y; });
}

Variable SigmoidV(const Variable& x) {
  return UnaryFromOutput(
      "Sigmoid", x, [](float v) { return tensor::Sigmoid(v); },
      [](float y) { return y * (1.0f - y); });
}

Variable PairwiseMax(const Variable& a, const Variable& b) {
  CGKGR_CHECK(a.value().SameShape(b.value()));
  const int64_t n = a.value().size();
  tensor::Tensor out(a.value().shape());
  const float* av = a.value().data();
  const float* bv = b.value().data();
  float* ov = out.data();
  for (int64_t i = 0; i < n; ++i) ov[i] = std::max(av[i], bv[i]);
  return MakeOpResult("PairwiseMax", std::move(out), {a, b}, [n](Node* node) {
    const NodePtr& na = node->inputs[0];
    const NodePtr& nb = node->inputs[1];
    const float* g = node->grad.data();
    const float* av = na->value.data();
    const float* bv = nb->value.data();
    if (na->requires_grad) {
      float* ag = GradAccumulator(na.get()).data();
      for (int64_t i = 0; i < n; ++i) {
        if (av[i] >= bv[i]) ag[i] += g[i];
      }
    }
    if (nb->requires_grad) {
      float* bg = GradAccumulator(nb.get()).data();
      for (int64_t i = 0; i < n; ++i) {
        if (av[i] < bv[i]) bg[i] += g[i];
      }
    }
  });
}

Variable Scale(const Variable& x, float c) {
  const int64_t n = x.value().size();
  tensor::Tensor out(x.value().shape());
  const float* xv = x.value().data();
  float* ov = out.data();
  for (int64_t i = 0; i < n; ++i) ov[i] = c * xv[i];
  return MakeOpResult("Scale", std::move(out), {x}, [n, c](Node* node) {
    const NodePtr& nx = node->inputs[0];
    if (!nx->requires_grad) return;
    tensor::Axpy(n, c, node->grad.data(),
                 GradAccumulator(nx.get()).data());
  });
}

Variable Mean(const Variable& x) {
  const int64_t n = x.value().size();
  CGKGR_CHECK(n > 0);
  tensor::Tensor out({1}, {tensor::Sum(n, x.value().data()) /
                           static_cast<float>(n)});
  return MakeOpResult("Mean", std::move(out), {x}, [n](Node* node) {
    const NodePtr& nx = node->inputs[0];
    if (!nx->requires_grad) return;
    const float g = node->grad[0] / static_cast<float>(n);
    float* xg = GradAccumulator(nx.get()).data();
    for (int64_t i = 0; i < n; ++i) xg[i] += g;
  });
}

Variable SumAll(const Variable& x) {
  const int64_t n = x.value().size();
  tensor::Tensor out({1}, {tensor::Sum(n, x.value().data())});
  return MakeOpResult("SumAll", std::move(out), {x}, [n](Node* node) {
    const NodePtr& nx = node->inputs[0];
    if (!nx->requires_grad) return;
    const float g = node->grad[0];
    float* xg = GradAccumulator(nx.get()).data();
    for (int64_t i = 0; i < n; ++i) xg[i] += g;
  });
}

Variable RelationMatMul(const Variable& x, std::vector<int64_t> relations,
                        const Variable& matrices) {
  const tensor::Tensor& tx = x.value();
  const tensor::Tensor& tm = matrices.value();
  CGKGR_CHECK(tx.rank() == 2);
  CGKGR_CHECK_MSG(tm.rank() == 3 && tm.dim(1) == tx.dim(1) &&
                      tm.dim(2) == tx.dim(1),
                  "relation matrices must be (R, d, d); got %s for d=%lld",
                  tm.ShapeString().c_str(),
                  static_cast<long long>(tx.dim(1)));
  const int64_t n = tx.dim(0);
  const int64_t d = tx.dim(1);
  const int64_t num_relations = tm.dim(0);
  CGKGR_CHECK(static_cast<int64_t>(relations.size()) == n);
  tensor::Tensor out({n, d});
  for (int64_t r = 0; r < n; ++r) {
    const int64_t rel = relations[static_cast<size_t>(r)];
    CGKGR_CHECK_MSG(rel >= 0 && rel < num_relations,
                    "relation id %lld out of range [0, %lld)",
                    static_cast<long long>(rel),
                    static_cast<long long>(num_relations));
    // out_row = x_row * M[rel]  (row vector times matrix).
    tensor::Gemm(false, false, 1, d, d, 1.0f, tx.data() + r * d,
                 tm.data() + rel * d * d, 0.0f, out.data() + r * d);
  }
  auto rels = std::make_shared<std::vector<int64_t>>(std::move(relations));
  return MakeOpResult(
      "RelationMatMul", std::move(out), {x, matrices},
      [rels, n, d](Node* node) {
        const NodePtr& nx = node->inputs[0];
        const NodePtr& nm = node->inputs[1];
        const float* g = node->grad.data();
        if (nx->requires_grad) {
          float* xg = GradAccumulator(nx.get()).data();
          for (int64_t r = 0; r < n; ++r) {
            const int64_t rel = (*rels)[static_cast<size_t>(r)];
            // dx_row += g_row * M[rel]^T.
            tensor::Gemm(false, true, 1, d, d, 1.0f, g + r * d,
                         nm->value.data() + rel * d * d, 1.0f, xg + r * d);
          }
        }
        if (nm->requires_grad) {
          const float* xv = nx->value.data();
          float* matrices_grad = GradAccumulator(nm.get()).data();
          for (int64_t r = 0; r < n; ++r) {
            const int64_t rel = (*rels)[static_cast<size_t>(r)];
            // dM[rel] += outer(x_row, g_row).
            float* mg = matrices_grad + rel * d * d;
            const float* xr = xv + r * d;
            const float* gr = g + r * d;
            for (int64_t i = 0; i < d; ++i) {
              tensor::Axpy(d, xr[i], gr, mg + i * d);
            }
          }
        }
      });
}

Variable Reshape(const Variable& x, std::vector<int64_t> shape) {
  const int64_t n = x.value().size();
  tensor::Tensor out = x.value().Reshape(std::move(shape));
  return MakeOpResult("Reshape", std::move(out), {x}, [n](Node* node) {
    AccumulateInto(node->inputs[0], node->grad.data(), n);
  });
}

Variable BCEWithLogits(const Variable& logits, std::vector<float> labels) {
  const tensor::Tensor& tl = logits.value();
  CGKGR_CHECK(tl.rank() == 1);
  const int64_t n = tl.dim(0);
  CGKGR_CHECK(static_cast<int64_t>(labels.size()) == n);
  // loss_i = softplus(x) - y*x  (stable form: max(x,0) - y*x + log1p(exp(-|x|)))
  // Accumulated in double so the reduction is order-robust (same policy as
  // tensor::SegmentSoftmax; see docs/parallel_training.md).
  double total = 0.0;
  const float* x = tl.data();
  for (int64_t i = 0; i < n; ++i) {
    const float xi = x[i];
    const float yi = labels[static_cast<size_t>(i)];
    total += std::max(xi, 0.0f) - yi * xi + std::log1p(std::exp(-std::abs(xi)));
  }
  tensor::Tensor out({1}, {static_cast<float>(total / n)});
  auto y = std::make_shared<std::vector<float>>(std::move(labels));
  return MakeOpResult("BCEWithLogits", std::move(out), {logits},
                      [y, n](Node* node) {
    const NodePtr& nl = node->inputs[0];
    if (!nl->requires_grad) return;
    const float g = node->grad[0] / static_cast<float>(n);
    const float* x = nl->value.data();
    float* lg = GradAccumulator(nl.get()).data();
    for (int64_t i = 0; i < n; ++i) {
      lg[i] += g * (tensor::Sigmoid(x[i]) - (*y)[static_cast<size_t>(i)]);
    }
  });
}

Variable BPRLoss(const Variable& positive_scores,
                 const Variable& negative_scores) {
  const tensor::Tensor& tp = positive_scores.value();
  const tensor::Tensor& tn = negative_scores.value();
  CGKGR_CHECK(tp.rank() == 1 && tp.SameShape(tn));
  const int64_t n = tp.dim(0);
  CGKGR_CHECK(n > 0);
  double total = 0.0;  // double accumulator: order-robust reduction
  for (int64_t i = 0; i < n; ++i) {
    const float margin = tn[i] - tp[i];
    // softplus(margin), numerically stable.
    total += std::max(margin, 0.0f) + std::log1p(std::exp(-std::abs(margin)));
  }
  tensor::Tensor out({1}, {static_cast<float>(total / n)});
  return MakeOpResult(
      "BPRLoss", std::move(out), {positive_scores, negative_scores},
      [n](Node* node) {
        const NodePtr& np = node->inputs[0];
        const NodePtr& nn = node->inputs[1];
        const float g = node->grad[0] / static_cast<float>(n);
        float* pg =
            np->requires_grad ? GradAccumulator(np.get()).data() : nullptr;
        float* ng =
            nn->requires_grad ? GradAccumulator(nn.get()).data() : nullptr;
        for (int64_t i = 0; i < n; ++i) {
          const float d =
              g * tensor::Sigmoid(nn->value[i] - np->value[i]);
          if (pg != nullptr) pg[i] -= d;
          if (ng != nullptr) ng[i] += d;
        }
      });
}

}  // namespace autograd
}  // namespace cgkgr
