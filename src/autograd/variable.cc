#include "autograd/variable.h"

#include <unordered_set>

#include "common/macros.h"

namespace cgkgr {
namespace autograd {

namespace {
// Per-thread so a NoGradGuard on one thread (e.g. a thread-pool worker
// doing inference) cannot flip tape recording under a concurrent caller.
thread_local bool g_grad_mode = true;

// Active gradient-sink override table for this thread (null = accumulate
// into Node::grad as usual). Per-thread for the same reason as g_grad_mode:
// each training shard installs its own table on whichever lane runs it.
thread_local const GradSinkGuard::OverrideMap* g_grad_sink = nullptr;
}  // namespace

void Node::EnsureGrad() {
  if (grad.empty() && value.size() > 0) {
    grad = tensor::Tensor(value.shape());
  }
}

void Node::ZeroGrad() {
  if (!grad.empty()) grad.Zero();
}

Variable::Variable(tensor::Tensor value, bool requires_grad) {
  node_ = std::make_shared<Node>();
  node_->value = std::move(value);
  node_->requires_grad = requires_grad;
}

const tensor::Tensor& Variable::value() const {
  CGKGR_CHECK_MSG(defined(), "value() on undefined Variable");
  return node_->value;
}

tensor::Tensor* Variable::mutable_value() {
  CGKGR_CHECK_MSG(defined(), "mutable_value() on undefined Variable");
  return &node_->value;
}

tensor::Tensor& Variable::grad() {
  CGKGR_CHECK_MSG(defined(), "grad() on undefined Variable");
  node_->EnsureGrad();
  return node_->grad;
}

void Variable::ZeroGrad() {
  CGKGR_CHECK(defined());
  node_->ZeroGrad();
}

bool Variable::requires_grad() const {
  return defined() && node_->requires_grad;
}

void Variable::Backward() {
  CGKGR_CHECK_MSG(defined(), "Backward() on undefined Variable");
  CGKGR_CHECK_MSG(node_->value.size() == 1,
                  "Backward() requires a scalar, got %s",
                  node_->value.ShapeString().c_str());
  CGKGR_CHECK_MSG(node_->requires_grad,
                  "Backward() on a variable that does not require grad");

  // Iterative post-order DFS to topologically sort the reachable tape.
  std::vector<Node*> order;
  std::unordered_set<Node*> visited;
  std::vector<std::pair<Node*, size_t>> stack;
  stack.emplace_back(node_.get(), 0);
  visited.insert(node_.get());
  while (!stack.empty()) {
    auto& [node, next_input] = stack.back();
    if (next_input < node->inputs.size()) {
      Node* input = node->inputs[next_input++].get();
      if (input->requires_grad && visited.insert(input).second) {
        stack.emplace_back(input, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }

  node_->EnsureGrad();
  node_->grad.Fill(1.0f);

  // `order` is post-order (inputs before outputs); walk it backwards so each
  // node's grad is complete before being pushed to its inputs.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* node = *it;
    if (node->backward_fn) node->backward_fn(node);
  }
}

Variable MakeOpResult(const char* op_name, tensor::Tensor value,
                      std::vector<Variable> inputs,
                      std::function<void(Node*)> backward_fn) {
  bool any_requires_grad = false;
  if (GradModeEnabled()) {
    for (const Variable& input : inputs) {
      CGKGR_CHECK_MSG(input.defined(), "op input is an undefined Variable");
      if (input.requires_grad()) {
        any_requires_grad = true;
        break;
      }
    }
  }
  Variable out;
  out.node_ = std::make_shared<Node>();
  out.node_->value = std::move(value);
  if (any_requires_grad) {
    out.node_->requires_grad = true;
    out.node_->op_name = op_name;
    out.node_->inputs.reserve(inputs.size());
    out.node_->input_shapes.reserve(inputs.size());
    for (Variable& input : inputs) {
      out.node_->input_shapes.push_back(input.value().shape());
      out.node_->inputs.push_back(input.node());
    }
    out.node_->backward_fn = std::move(backward_fn);
  }
  return out;
}

bool GradModeEnabled() { return g_grad_mode; }

GradSinkGuard::GradSinkGuard(const OverrideMap* overrides)
    : previous_(g_grad_sink) {
  g_grad_sink = overrides;
}

GradSinkGuard::~GradSinkGuard() { g_grad_sink = previous_; }

tensor::Tensor& GradAccumulator(Node* node) {
  if (g_grad_sink != nullptr) {
    auto it = g_grad_sink->find(node);
    if (it != g_grad_sink->end()) return *it->second;
  }
  node->EnsureGrad();
  return node->grad;
}

NoGradGuard::NoGradGuard() : previous_(g_grad_mode) { g_grad_mode = false; }

NoGradGuard::~NoGradGuard() { g_grad_mode = previous_; }

}  // namespace autograd
}  // namespace cgkgr
