#ifndef CGKGR_AUTOGRAD_VARIABLE_H_
#define CGKGR_AUTOGRAD_VARIABLE_H_

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "tensor/tensor.h"

namespace cgkgr {
namespace autograd {

class Node;
using NodePtr = std::shared_ptr<Node>;

/// Internal graph node: a value, its (lazily allocated) gradient, and the
/// closure that pushes the gradient to the node's inputs.
class Node {
 public:
  tensor::Tensor value;
  /// Gradient w.r.t. `value`; empty until EnsureGrad() is called.
  tensor::Tensor grad;
  bool requires_grad = false;
  /// Inputs this node was computed from (keeps the tape alive).
  std::vector<NodePtr> inputs;
  /// Accumulates `grad` into the inputs' grads. Null for leaves.
  std::function<void(Node*)> backward_fn;

  // Tape metadata consumed by analysis::LintTape (see
  // src/analysis/tape_lint.h). Recorded only when the edge itself is
  // recorded, i.e. when gradient mode is on and some input requires grad.
  /// Static name of the op that produced this node; "leaf" for leaves and
  /// detached constants.
  const char* op_name = "leaf";
  /// Shapes of the inputs as observed when the op ran, parallel to
  /// `inputs`. LintTape compares them against the inputs' current values to
  /// catch post-forward mutation and freed/moved-out buffers.
  std::vector<std::vector<int64_t>> input_shapes;

  /// Allocates (zero-filled) grad storage if not present.
  void EnsureGrad();
  /// Zero-fills the grad if allocated.
  void ZeroGrad();
};

/// A tensor tracked by the dynamic autograd tape (PyTorch-style define-by-run
/// reverse-mode AD, single-threaded).
///
/// Variable is a cheap handle; copies share the node. Ops on Variables build
/// the tape implicitly when gradient mode is enabled and at least one input
/// requires a gradient.
class Variable {
 public:
  /// Null handle.
  Variable() = default;

  /// Wraps a tensor as a leaf.
  explicit Variable(tensor::Tensor value, bool requires_grad = false);

  /// True when this handle refers to a node.
  bool defined() const { return node_ != nullptr; }

  /// The forward value. Handle must be defined.
  const tensor::Tensor& value() const;
  /// Mutable access to the forward value (leaf initialization only).
  tensor::Tensor* mutable_value();

  /// The gradient tensor, allocated on demand.
  tensor::Tensor& grad();
  /// Zeroes the gradient if allocated.
  void ZeroGrad();

  /// Whether gradients flow into this variable.
  bool requires_grad() const;

  /// Runs reverse-mode accumulation from this (scalar) variable. Gradients
  /// accumulate (+=) into every reachable variable with requires_grad.
  void Backward();

  /// The underlying node (for op implementations).
  const NodePtr& node() const { return node_; }

  /// Total element count of the value.
  int64_t size() const { return value().size(); }

 private:
  friend Variable MakeOpResult(const char* op_name, tensor::Tensor value,
                               std::vector<Variable> inputs,
                               std::function<void(Node*)> backward_fn);
  NodePtr node_;
};

/// Creates the result Variable of an op: when gradient mode is on and any
/// input requires a gradient, the tape edge and backward closure are
/// recorded; otherwise a detached constant is returned. `op_name` must be a
/// string literal (stored unowned on the node for lint reports).
Variable MakeOpResult(const char* op_name, tensor::Tensor value,
                      std::vector<Variable> inputs,
                      std::function<void(Node*)> backward_fn);

/// True when ops should record the tape (default true; single-threaded
/// global, like torch.is_grad_enabled()).
bool GradModeEnabled();

/// Per-thread redirection of leaf-gradient accumulation, the mechanism
/// behind data-parallel training (models::ParallelTrainer): each training
/// shard runs its backward pass with a GradSinkGuard mapping every shared
/// parameter Node to a shard-private buffer, so concurrent backwards never
/// write the same memory. Tape-interior nodes are shard-private already and
/// keep accumulating into their own Node::grad.
///
/// Buffers must be pre-allocated to the node's value shape (and zeroed by
/// the owner between uses); the guard only redirects, it never allocates.
class GradSinkGuard {
 public:
  /// Maps a Node to the buffer its gradient accumulates into while the
  /// guard is active on this thread.
  using OverrideMap = std::unordered_map<const Node*, tensor::Tensor*>;

  /// Installs `overrides` as this thread's active sink. The map must
  /// outlive the guard and is read-only while installed (shareable across
  /// guards on different threads).
  explicit GradSinkGuard(const OverrideMap* overrides);
  ~GradSinkGuard();
  GradSinkGuard(const GradSinkGuard&) = delete;
  GradSinkGuard& operator=(const GradSinkGuard&) = delete;

 private:
  const OverrideMap* previous_;
};

/// The buffer gradients for `node` accumulate into on this thread: the
/// override registered by the innermost active GradSinkGuard when present,
/// else node->grad (allocated on demand). Every backward function routes
/// its writes through this.
tensor::Tensor& GradAccumulator(Node* node);

/// RAII guard that disables tape recording for its scope (inference mode).
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool previous_;
};

}  // namespace autograd
}  // namespace cgkgr

#endif  // CGKGR_AUTOGRAD_VARIABLE_H_
