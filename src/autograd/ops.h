#ifndef CGKGR_AUTOGRAD_OPS_H_
#define CGKGR_AUTOGRAD_OPS_H_

#include <cstdint>
#include <vector>

#include "autograd/variable.h"

namespace cgkgr {
namespace autograd {

/// \file
/// Differentiable operations. Every op validates shapes with CGKGR_CHECK,
/// computes the forward value eagerly, and (when gradient mode is on)
/// records a backward closure that accumulates into its inputs' grads.
///
/// Conventions: matrices are row-major (rows, cols); "segment" ops treat a
/// (segments * segment_size, d) matrix as `segments` fixed-size neighbor
/// groups — the layout produced by fixed-size neighbor sampling (paper
/// Sec. III-A, "Neighbor sampling").

/// Wraps a tensor as a non-differentiable constant.
Variable Constant(tensor::Tensor value);

/// Gathers rows of `table` (N, d) at `indices`, producing (n, d).
/// Backward scatter-adds into the table gradient (embedding lookup).
Variable Gather(const Variable& table, std::vector<int64_t> indices);

/// Repeats each row of `x` (n, d) `times` times consecutively:
/// output row (i * times + j) = x row i. Produces (n * times, d).
Variable RowRepeat(const Variable& x, int64_t times);

/// Matrix product of (m, k) and (k, n) -> (m, n).
Variable MatMul(const Variable& a, const Variable& b);

/// Elementwise sum; shapes must match.
Variable Add(const Variable& a, const Variable& b);

/// Elementwise difference; shapes must match.
Variable Sub(const Variable& a, const Variable& b);

/// Elementwise (Hadamard) product; shapes must match.
Variable Mul(const Variable& a, const Variable& b);

/// Adds bias vector `b` (d) to every row of `x` (n, d).
Variable AddRowBias(const Variable& x, const Variable& b);

/// Per-row dot product of two (n, d) matrices -> (n).
Variable RowDot(const Variable& a, const Variable& b);

/// Scales row r of `x` (n, d) by s[r] where `s` is (n) -> (n, d).
Variable RowScale(const Variable& x, const Variable& s);

/// Column-wise concatenation of (n, d1) and (n, d2) -> (n, d1 + d2).
Variable ConcatCols(const Variable& a, const Variable& b);

/// Softmax over each consecutive segment of `segment_size` elements of the
/// flat (n) input; n must be divisible by segment_size.
Variable SegmentSoftmax(const Variable& x, int64_t segment_size);

/// Attention pooling: with values (n, d) and weights (n) grouped in
/// consecutive segments of `segment_size` rows, produces
/// (n / segment_size, d) where out_s = sum_{i in segment s} w_i * v_i.
Variable SegmentWeightedSum(const Variable& values, const Variable& weights,
                            int64_t segment_size);

/// Rectified linear unit.
Variable Relu(const Variable& x);

/// Leaky rectified linear unit (used by the KGAT baseline).
Variable LeakyRelu(const Variable& x, float negative_slope);

/// Hyperbolic tangent.
Variable Tanh(const Variable& x);

/// Elementwise logistic sigmoid.
Variable SigmoidV(const Variable& x);

/// Elementwise maximum of two equally-shaped inputs (gradient flows to the
/// winning element; ties go to `a`). Implements the paper's pmax encoder.
Variable PairwiseMax(const Variable& a, const Variable& b);

/// Multiplies every element by the constant `c`.
Variable Scale(const Variable& x, float c);

/// Mean of all elements -> scalar (shape {1}).
Variable Mean(const Variable& x);

/// Sum of all elements -> scalar (shape {1}).
Variable SumAll(const Variable& x);

/// Right-multiplies row r of `x` (n, d) by the relation matrix
/// `matrices[rel[r]]`: out_row = x_row * M. `matrices` is a stacked
/// (num_relations, d, d) parameter. Used for relation-specific bilinear
/// attention (paper Eqs. 1, 14, 19).
Variable RelationMatMul(const Variable& x, std::vector<int64_t> relations,
                        const Variable& matrices);

/// Views `x` under a new shape of equal volume (storage is shared; the
/// gradient flows through element-for-element).
Variable Reshape(const Variable& x, std::vector<int64_t> shape);

/// Mean binary cross-entropy with logits: labels are 0/1 constants.
/// Produces a scalar; backward is the fused, numerically stable form.
Variable BCEWithLogits(const Variable& logits, std::vector<float> labels);

/// Mean Bayesian personalized-ranking loss: mean softplus(neg - pos).
Variable BPRLoss(const Variable& positive_scores,
                 const Variable& negative_scores);

}  // namespace autograd
}  // namespace cgkgr

#endif  // CGKGR_AUTOGRAD_OPS_H_
