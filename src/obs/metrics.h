#ifndef CGKGR_OBS_METRICS_H_
#define CGKGR_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/mutex.h"

namespace cgkgr {
namespace obs {

/// \file
/// Process-wide metrics: named Counter / Gauge / Histogram instruments with
/// optional labels, registered in a MetricsRegistry and exported as a
/// Prometheus-style text exposition, a JSON blob (for bench summaries), or a
/// human table. Instrument reads/writes are lock-free (relaxed atomics);
/// only instrument *creation* takes the registry mutex, so the intended use
/// is to fetch pointers once (constructor, function-local static) and then
/// hammer them from any thread. See docs/observability.md for naming
/// conventions and the full instrument inventory.

/// Monotonically increasing event count. `_total`-suffixed by convention.
class Counter {
 public:
  /// Adds `n` (>= 0); safe from any thread.
  void Increment(int64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }

  int64_t value() const { return value_.load(std::memory_order_relaxed); }

  /// Zeroes the counter. Prometheus counters never go down; this exists for
  /// per-owner counters that expose a Reset (serve::Engine::ResetStats) and
  /// for test isolation.
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A value that can go up and down (queue depth, last-epoch loss).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }

  /// Adds `delta` (CAS loop; contended adds retry, reads never block).
  void Add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }

  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Point-in-time copy of a Histogram's state (see Histogram::Snapshot).
struct HistogramSnapshot {
  std::array<int64_t, 32> buckets{};
  int64_t count = 0;
  double sum = 0.0;

  /// Upper bound of the bucket holding the p-quantile sample, p in [0, 1].
  /// Returns 0 when empty. A <=2x overestimate — the usual price of O(1)
  /// atomic recording on hot paths.
  double Percentile(double p) const;
};

/// Lock-free fixed-bucket histogram; the generalization of the old
/// serve::LatencyHistogram. Bucket b counts samples in [2^b, 2^(b+1))
/// (bucket 0 additionally absorbs sub-1 samples), so 32 buckets span
/// sub-unit to ~2^32 in whatever unit the caller records (this repo's
/// convention: microseconds, suffix `_micros`).
///
/// Thread-safety note: every member is a relaxed atomic, so there is no
/// mutex-protected state to annotate; snapshot-vs-record interleavings are
/// TSan's domain (CGKGR_SANITIZE=thread). SnapshotAndZero reads each bucket
/// with an atomic exchange, so a concurrent Record lands in exactly one
/// snapshot — never lost, never double-counted.
class Histogram {
 public:
  static constexpr int kNumBuckets = 32;

  /// Records one sample; safe to call from any thread.
  void Record(double value);

  /// Upper bound of the bucket holding the p-quantile sample (see
  /// HistogramSnapshot::Percentile). Returns 0 when empty.
  double Percentile(double p) const { return Snapshot().Percentile(p); }

  /// Samples recorded.
  int64_t count() const { return count_.load(std::memory_order_relaxed); }

  /// Sum of recorded samples.
  double sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Point-in-time copy of the buckets (concurrent Records may straddle the
  /// copy; totals are eventually consistent).
  HistogramSnapshot Snapshot() const;

  /// Atomically swaps every bucket to zero and returns what was there: the
  /// race-free replacement for the old "Reset from a quiesced engine"
  /// footgun. Concurrent Records land either in the returned snapshot or in
  /// the freshly zeroed histogram, never in neither/both.
  HistogramSnapshot SnapshotAndZero();

  /// Zeroes all buckets (SnapshotAndZero with the snapshot discarded).
  void Reset() { (void)SnapshotAndZero(); }

 private:
  std::array<std::atomic<int64_t>, kNumBuckets> buckets_{};
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Instrument labels, e.g. {{"dataset", "music"}}. Order-insensitive: the
/// registry canonicalizes by sorting on key. Values must not contain '"',
/// '\' or newlines (CHECK-enforced).
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Thread-safe registry of named instruments. `Default()` is the
/// process-wide instance every subsystem records into; tests that need
/// isolation construct their own.
///
/// An instrument is identified by (name, labels); repeated Get* calls with
/// the same identity return the same pointer, which stays valid for the
/// registry's lifetime. A name is bound to one instrument type for the life
/// of the registry (getting `foo` as a counter and later as a gauge is a
/// fatal programming error).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry.
  static MetricsRegistry& Default();

  Counter* GetCounter(const std::string& name, const Labels& labels = {})
      CGKGR_EXCLUDES(mu_);
  Gauge* GetGauge(const std::string& name, const Labels& labels = {})
      CGKGR_EXCLUDES(mu_);
  Histogram* GetHistogram(const std::string& name, const Labels& labels = {})
      CGKGR_EXCLUDES(mu_);

  /// Prometheus-style text exposition, families sorted by name, members
  /// sorted by label string. Histograms emit only non-empty `_bucket` lines
  /// (plus the cumulative `+Inf`, `_sum`, `_count`) — a documented deviation
  /// that keeps 32-bucket dumps readable; see docs/observability.md.
  std::string Dump() const CGKGR_EXCLUDES(mu_);

  /// JSON array of {"instrument","labels","type",...} objects, one line per
  /// instrument, for embedding in bench JSON summaries.
  std::string DumpJson() const CGKGR_EXCLUDES(mu_);

  /// Human view rendered through common/table_printer.
  std::string ToTable() const CGKGR_EXCLUDES(mu_);

  /// Registered instruments across all families.
  int64_t NumInstruments() const CGKGR_EXCLUDES(mu_);

 private:
  enum class Type { kCounter, kGauge, kHistogram };

  /// All instruments sharing one name; members keyed by the canonical
  /// rendered label string (`key="value",...`, "" for unlabeled).
  struct Family {
    Type type = Type::kCounter;
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>> histograms;
  };

  Family& GetFamily(const std::string& name, Type type)
      CGKGR_REQUIRES(mu_);

  mutable Mutex mu_;
  std::map<std::string, Family> families_ CGKGR_GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace cgkgr

#endif  // CGKGR_OBS_METRICS_H_
