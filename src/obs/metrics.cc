#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "common/mutex.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "obs/json.h"

namespace cgkgr {
namespace obs {

namespace {

/// Canonical label rendering: sorted by key, `key="value",...` without the
/// surrounding braces (so histogram dumps can splice in `le="..."`).
std::string RenderLabels(Labels labels) {
  std::sort(labels.begin(), labels.end());
  std::string out;
  for (size_t i = 0; i < labels.size(); ++i) {
    const auto& [key, value] = labels[i];
    CGKGR_CHECK_MSG(!key.empty(), "empty metric label key");
    CGKGR_CHECK_MSG(value.find_first_of("\"\\\n") == std::string::npos,
                    "metric label value %s needs no escaping by contract",
                    value.c_str());
    if (i > 0) out += ',';
    out += key;
    out += "=\"";
    out += value;
    out += '"';
  }
  return out;
}

/// `name{labels}` or bare `name` when unlabeled.
std::string Identity(const std::string& name, const std::string& labels) {
  return labels.empty() ? name : name + "{" + labels + "}";
}

/// Trims trailing zeros off a %.6f rendering so gauges print as `3.5`, not
/// `3.500000` (and integers as `42`).
std::string FormatValue(double value) {
  std::string s = StrFormat("%.6f", value);
  while (!s.empty() && s.back() == '0') s.pop_back();
  if (!s.empty() && s.back() == '.') s.pop_back();
  return s;
}

}  // namespace

double HistogramSnapshot::Percentile(double p) const {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  // Rank of the requested sample, 1-based (p99 of 100 samples = 99th).
  const int64_t rank = std::max<int64_t>(
      1, static_cast<int64_t>(std::ceil(p * static_cast<double>(count))));
  int64_t cumulative = 0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    cumulative += buckets[b];
    if (cumulative >= rank) return std::exp2(static_cast<double>(b + 1));
  }
  return std::exp2(static_cast<double>(buckets.size()));
}

void Histogram::Record(double value) {
  int bucket = 0;
  if (value >= 1.0) {
    // floor(log2(value)), clamped to the last bucket.
    bucket =
        std::min<int>(kNumBuckets - 1, static_cast<int>(std::log2(value)));
  }
  buckets_[static_cast<size_t>(bucket)].fetch_add(1,
                                                  std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + value,
                                     std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  for (int b = 0; b < kNumBuckets; ++b) {
    const int64_t n =
        buckets_[static_cast<size_t>(b)].load(std::memory_order_relaxed);
    snapshot.buckets[static_cast<size_t>(b)] = n;
    snapshot.count += n;
  }
  snapshot.sum = sum_.load(std::memory_order_relaxed);
  return snapshot;
}

HistogramSnapshot Histogram::SnapshotAndZero() {
  HistogramSnapshot snapshot;
  for (int b = 0; b < kNumBuckets; ++b) {
    // exchange, not load+store: a concurrent Record's increment is either in
    // the value we took or in the zeroed bucket — never lost.
    const int64_t n = buckets_[static_cast<size_t>(b)].exchange(
        0, std::memory_order_relaxed);
    snapshot.buckets[static_cast<size_t>(b)] = n;
    snapshot.count += n;
  }
  snapshot.sum = sum_.exchange(0.0, std::memory_order_relaxed);
  // count_ is derivable from the buckets; swap it too so count() tracks.
  count_.exchange(0, std::memory_order_relaxed);
  return snapshot;
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry::Family& MetricsRegistry::GetFamily(const std::string& name,
                                                    Type type) {
  CGKGR_CHECK_MSG(!name.empty(), "empty metric name");
  auto [it, inserted] = families_.try_emplace(name);
  if (inserted) {
    it->second.type = type;
  } else {
    CGKGR_CHECK_MSG(it->second.type == type,
                    "metric '%s' registered with two instrument types",
                    name.c_str());
  }
  return it->second;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const Labels& labels) {
  const std::string key = RenderLabels(labels);
  MutexLock lock(&mu_);
  auto& slot = GetFamily(name, Type::kCounter).counters[key];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const Labels& labels) {
  const std::string key = RenderLabels(labels);
  MutexLock lock(&mu_);
  auto& slot = GetFamily(name, Type::kGauge).gauges[key];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const Labels& labels) {
  const std::string key = RenderLabels(labels);
  MutexLock lock(&mu_);
  auto& slot = GetFamily(name, Type::kHistogram).histograms[key];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

std::string MetricsRegistry::Dump() const {
  MutexLock lock(&mu_);
  std::string out;
  for (const auto& [name, family] : families_) {
    switch (family.type) {
      case Type::kCounter:
        out += "# TYPE " + name + " counter\n";
        for (const auto& [labels, counter] : family.counters) {
          out += StrFormat("%s %lld\n", Identity(name, labels).c_str(),
                           static_cast<long long>(counter->value()));
        }
        break;
      case Type::kGauge:
        out += "# TYPE " + name + " gauge\n";
        for (const auto& [labels, gauge] : family.gauges) {
          out += StrFormat("%s %s\n", Identity(name, labels).c_str(),
                           FormatValue(gauge->value()).c_str());
        }
        break;
      case Type::kHistogram:
        out += "# TYPE " + name + " histogram\n";
        for (const auto& [labels, histogram] : family.histograms) {
          const HistogramSnapshot snapshot = histogram->Snapshot();
          const std::string sep = labels.empty() ? "" : ",";
          const std::string braced =
              labels.empty() ? "" : "{" + labels + "}";
          int64_t cumulative = 0;
          for (size_t b = 0; b < snapshot.buckets.size(); ++b) {
            if (snapshot.buckets[b] == 0) continue;  // documented deviation
            cumulative += snapshot.buckets[b];
            out += StrFormat(
                "%s_bucket{%s%sle=\"%s\"} %lld\n", name.c_str(),
                labels.c_str(), sep.c_str(),
                FormatValue(std::exp2(static_cast<double>(b + 1))).c_str(),
                static_cast<long long>(cumulative));
          }
          out += StrFormat("%s_bucket{%s%sle=\"+Inf\"} %lld\n", name.c_str(),
                           labels.c_str(), sep.c_str(),
                           static_cast<long long>(snapshot.count));
          out += StrFormat("%s_sum%s %s\n", name.c_str(), braced.c_str(),
                           FormatValue(snapshot.sum).c_str());
          out += StrFormat("%s_count%s %lld\n", name.c_str(), braced.c_str(),
                           static_cast<long long>(snapshot.count));
        }
        break;
    }
  }
  return out;
}

std::string MetricsRegistry::DumpJson() const {
  MutexLock lock(&mu_);
  std::string out = "[";
  bool first = true;
  const auto append = [&out, &first](const std::string& entry) {
    out += first ? "\n" : ",\n";
    out += "    " + entry;
    first = false;
  };
  for (const auto& [name, family] : families_) {
    const auto prefix = [&name](const std::string& labels) {
      return "{\"instrument\": \"" + JsonEscape(name) + "\", \"labels\": \"" +
             JsonEscape(labels) + "\"";
    };
    for (const auto& [labels, counter] : family.counters) {
      append(prefix(labels) +
             StrFormat(", \"type\": \"counter\", \"value\": %lld}",
                       static_cast<long long>(counter->value())));
    }
    for (const auto& [labels, gauge] : family.gauges) {
      append(prefix(labels) + StrFormat(", \"type\": \"gauge\", "
                                        "\"value\": %.6g}",
                                        gauge->value()));
    }
    for (const auto& [labels, histogram] : family.histograms) {
      const HistogramSnapshot snapshot = histogram->Snapshot();
      append(prefix(labels) +
             StrFormat(", \"type\": \"histogram\", \"count\": %lld, "
                       "\"sum\": %.6g, \"p50\": %.6g, \"p99\": %.6g}",
                       static_cast<long long>(snapshot.count), snapshot.sum,
                       snapshot.Percentile(0.50), snapshot.Percentile(0.99)));
    }
  }
  out += first ? "]" : "\n  ]";
  return out;
}

std::string MetricsRegistry::ToTable() const {
  MutexLock lock(&mu_);
  TablePrinter table({"Instrument", "Type", "Value"});
  for (const auto& [name, family] : families_) {
    for (const auto& [labels, counter] : family.counters) {
      table.AddRow({Identity(name, labels), "counter",
                    StrFormat("%lld",
                              static_cast<long long>(counter->value()))});
    }
    for (const auto& [labels, gauge] : family.gauges) {
      table.AddRow(
          {Identity(name, labels), "gauge", FormatValue(gauge->value())});
    }
    for (const auto& [labels, histogram] : family.histograms) {
      const HistogramSnapshot snapshot = histogram->Snapshot();
      table.AddRow({Identity(name, labels), "histogram",
                    StrFormat("n=%lld p50=%s p99=%s sum=%s",
                              static_cast<long long>(snapshot.count),
                              FormatValue(snapshot.Percentile(0.50)).c_str(),
                              FormatValue(snapshot.Percentile(0.99)).c_str(),
                              FormatValue(snapshot.sum).c_str())});
    }
  }
  return table.ToString();
}

int64_t MetricsRegistry::NumInstruments() const {
  MutexLock lock(&mu_);
  int64_t total = 0;
  for (const auto& [name, family] : families_) {
    total += static_cast<int64_t>(family.counters.size() +
                                  family.gauges.size() +
                                  family.histograms.size());
  }
  return total;
}

}  // namespace obs
}  // namespace cgkgr
