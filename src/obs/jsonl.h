#ifndef CGKGR_OBS_JSONL_H_
#define CGKGR_OBS_JSONL_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <string_view>

#include "common/macros.h"
#include "common/mutex.h"
#include "common/status.h"

namespace cgkgr {
namespace obs {

/// \file
/// JSONL (one JSON object per line) sink for per-epoch metric rows —
/// learning curves, trial aggregates — consumed by pandas.read_json(
/// lines=True) or jq. Append-mode, so successive runs accumulate in one
/// file and a crash loses at most the unflushed row.

/// Builder for one JSONL row. Keys are emitted in insertion order.
class JsonlRow {
 public:
  JsonlRow& Add(std::string_view key, std::string_view value);
  JsonlRow& Add(std::string_view key, double value);
  JsonlRow& Add(std::string_view key, int64_t value);
  JsonlRow& Add(std::string_view key, int value) {
    return Add(key, static_cast<int64_t>(value));
  }

  /// The row as a single-line JSON object (no trailing newline).
  std::string ToJson() const { return "{" + body_ + "}"; }

 private:
  JsonlRow& AddRaw(std::string_view key, const std::string& rendered);

  std::string body_;
};

/// Thread-safe append-only JSONL file writer.
class JsonlSink {
 public:
  /// Opens `path` for appending. A failed open is sticky: Write becomes a
  /// no-op and status() reports the error (callers on training hot paths
  /// should not have to CHECK a telemetry sink).
  explicit JsonlSink(const std::string& path);

  /// Appends one row + newline and flushes (rows survive a later crash).
  void Write(const JsonlRow& row) CGKGR_EXCLUDES(mu_);

  /// OK while the sink is healthy; first open/write error otherwise.
  Status status() const CGKGR_EXCLUDES(mu_);

  const std::string& path() const { return path_; }

 private:
  const std::string path_;
  mutable Mutex mu_;
  std::ofstream out_ CGKGR_GUARDED_BY(mu_);
  Status status_ CGKGR_GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace cgkgr

#endif  // CGKGR_OBS_JSONL_H_
