#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>

#include "common/logging.h"
#include "common/macros.h"
#include "common/mutex.h"
#include "common/string_util.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace cgkgr {
namespace obs {

namespace {

/// Per-thread buffer cap; spans past it are dropped (and counted in the
/// `obs_trace_dropped_spans_total` metric) rather than growing unboundedly.
constexpr size_t kMaxSpansPerThread = size_t{1} << 20;

void ExportAtExit() {
  if (!TraceCollector::IsEnabled()) return;
  const Status st = TraceCollector::Default().WriteFile();
  if (!st.ok()) {
    CGKGR_LOG(Error) << "trace export failed: " << st.ToString();
  }
}

/// Reads CGKGR_TRACE at static-init time so every binary linking the
/// library honors the env var without explicit wiring.
bool InitFromEnv() {
  const char* path = std::getenv("CGKGR_TRACE");
  if (path != nullptr && path[0] != '\0') {
    TraceCollector::Default().Enable(path);
  }
  return true;
}

const bool g_env_init = InitFromEnv();

}  // namespace

namespace trace_internal {

std::atomic<bool> g_enabled{false};

double NowMicros() {
  // Steady clock relative to a process-local epoch: Chrome trace `ts` only
  // needs to be internally consistent, not wall-clock anchored.
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

}  // namespace trace_internal

/// One thread's spans. shared_ptr-owned jointly by the thread (thread_local)
/// and the collector, so a drain after thread exit still sees the spans and
/// a thread outliving a drain keeps a valid buffer.
struct TraceCollector::ThreadBuffer {
  struct Span {
    const char* name;  // string literal, by ScopedSpan contract
    double ts_us;
    double dur_us;
  };

  Mutex mu;
  std::vector<Span> spans CGKGR_GUARDED_BY(mu);
  int64_t tid = 0;  // sequential id assigned at registration
};

TraceCollector& TraceCollector::Default() {
  // Function-local static: constructed at first use (the CGKGR_TRACE env
  // probe during static init), destroyed after the atexit exporter runs.
  static TraceCollector collector;
  return collector;
}

void TraceCollector::Enable(std::string path) {
  bool register_at_exit = false;
  {
    MutexLock lock(&mu_);
    if (!path.empty()) {
      path_ = std::move(path);
      if (!at_exit_registered_) {
        at_exit_registered_ = true;
        register_at_exit = true;
      }
    }
  }
  if (register_at_exit) std::atexit(&ExportAtExit);
  trace_internal::g_enabled.store(true, std::memory_order_relaxed);
}

void TraceCollector::Disable() {
  trace_internal::g_enabled.store(false, std::memory_order_relaxed);
}

std::string TraceCollector::output_path() const {
  MutexLock lock(&mu_);
  return path_;
}

TraceCollector::ThreadBuffer* TraceCollector::BufferForThisThread() {
  thread_local std::shared_ptr<ThreadBuffer> buffer;
  if (buffer == nullptr) {
    buffer = std::make_shared<ThreadBuffer>();
    MutexLock lock(&mu_);
    buffer->tid = static_cast<int64_t>(buffers_.size());
    buffers_.push_back(buffer);
  }
  return buffer.get();
}

void trace_internal::EmitSpan(const char* name, double start_us) {
  const double end_us = NowMicros();
  TraceCollector::ThreadBuffer* buffer =
      TraceCollector::Default().BufferForThisThread();
  MutexLock lock(&buffer->mu);
  if (buffer->spans.size() >= kMaxSpansPerThread) {
    static Counter* dropped = MetricsRegistry::Default().GetCounter(
        "obs_trace_dropped_spans_total");
    dropped->Increment();
    return;
  }
  buffer->spans.push_back({name, start_us, end_us - start_us});
}

std::vector<TraceCollector::Event> TraceCollector::DrainEvents() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    MutexLock lock(&mu_);
    buffers = buffers_;
  }
  std::vector<Event> events;
  for (const auto& buffer : buffers) {
    std::vector<ThreadBuffer::Span> spans;
    {
      MutexLock lock(&buffer->mu);
      spans.swap(buffer->spans);
    }
    for (const auto& span : spans) {
      events.push_back({span.name, span.ts_us, span.dur_us, buffer->tid});
    }
  }
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) { return a.ts_us < b.ts_us; });
  return events;
}

std::string TraceCollector::DrainJson() {
  const std::vector<Event> events = DrainEvents();
  std::string out = "{\"traceEvents\": [";
  for (size_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i];
    out += i == 0 ? "\n" : ",\n";
    out += StrFormat(
        "  {\"name\": \"%s\", \"ph\": \"X\", \"ts\": %.3f, \"dur\": %.3f, "
        "\"pid\": 1, \"tid\": %lld}",
        JsonEscape(e.name).c_str(), e.ts_us, e.dur_us,
        static_cast<long long>(e.tid));
  }
  out += events.empty() ? "]}\n" : "\n]}\n";
  return out;
}

Status TraceCollector::WriteFile() {
  const std::string path = output_path();
  if (path.empty()) {
    return Status::InvalidArgument("trace output path not set");
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::IOError("cannot open trace output: " + path);
  }
  out << DrainJson();
  out.flush();
  if (!out) {
    return Status::IOError("short write to trace output: " + path);
  }
  return Status::OK();
}

}  // namespace obs
}  // namespace cgkgr
