#ifndef CGKGR_OBS_JSON_H_
#define CGKGR_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace cgkgr {
namespace obs {

/// \file
/// The repo's one JSON library: a small value model with a serializer that
/// escapes correctly (quotes, backslashes, control characters — the
/// hand-rolled string concatenation it replaced produced invalid JSON for
/// dataset names or paths containing any of those) and a strict parser.
/// Every JSON sink in the repo goes through this: the bench artifact writer
/// (exp::WriteArtifact), the JSONL learning-curve rows (obs::JsonlRow), and
/// the metrics exposition embed. See docs/benchmarking.md for the artifact
/// schema built on top.

/// Escapes `text` for inclusion inside a JSON string literal (no
/// surrounding quotes added): `"` and `\` are backslash-escaped, control
/// characters use the two-character forms (\n, \t, \r, \b, \f) or \u00XX.
std::string JsonEscape(std::string_view text);

/// An immutable-kind, mutable-value JSON document node. Objects preserve
/// insertion order so serialized artifacts diff cleanly and golden tests
/// stay stable. Integers are kept distinct from doubles so counters
/// round-trip exactly.
class Json {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  /// Default-constructs null.
  Json() = default;

  static Json Null() { return Json(); }
  static Json Bool(bool value);
  static Json Int(int64_t value);
  static Json Double(double value);
  static Json Str(std::string value);
  static Json Array();
  static Json Object();

  /// Strict parse of a complete JSON document (trailing non-whitespace is
  /// an error). Parse errors carry the byte offset.
  static Result<Json> Parse(std::string_view text);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_int() const { return kind_ == Kind::kInt; }
  /// True for both kInt and kDouble (any JSON number).
  bool is_number() const {
    return kind_ == Kind::kInt || kind_ == Kind::kDouble;
  }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Value accessors; fatal on kind mismatch (AsDouble accepts kInt).
  bool AsBool() const;
  int64_t AsInt() const;
  double AsDouble() const;
  const std::string& AsString() const;

  /// Array access. Append is fatal on non-arrays.
  const std::vector<Json>& items() const;
  Json& Append(Json value);

  /// Object access, insertion-ordered. Set replaces an existing key in
  /// place; Get returns nullptr when absent. Fatal on non-objects.
  const std::vector<std::pair<std::string, Json>>& members() const;
  Json& Set(std::string key, Json value);
  const Json* Get(std::string_view key) const;

  /// Convenience typed lookups: value of `key` when present and of the
  /// right kind, `fallback` otherwise.
  double GetDouble(std::string_view key, double fallback) const;
  int64_t GetInt(std::string_view key, int64_t fallback) const;
  std::string GetString(std::string_view key,
                        const std::string& fallback) const;

  /// Serializes the document. `indent` == 0 renders one line; > 0 pretty
  /// prints with that many spaces per level. Doubles render with %.10g
  /// (NaN/Inf, which JSON cannot carry, render as null).
  std::string Dump(int indent = 0) const;

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;
};

}  // namespace obs
}  // namespace cgkgr

#endif  // CGKGR_OBS_JSON_H_
