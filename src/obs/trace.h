#ifndef CGKGR_OBS_TRACE_H_
#define CGKGR_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/mutex.h"
#include "common/status.h"

namespace cgkgr {
namespace obs {

/// \file
/// Lightweight tracing: RAII ScopedSpan records (name, start, duration) into
/// a per-thread buffer; the process-wide TraceCollector drains the buffers
/// into Chrome trace-event JSON that loads directly in chrome://tracing and
/// Perfetto (ui.perfetto.dev). Setting the environment variable
/// `CGKGR_TRACE=<path>` enables tracing process-wide and writes the JSON to
/// `<path>` at clean process exit. When tracing is disabled a span costs one
/// relaxed atomic load and a branch — cheap enough to leave in hot paths.
///
/// Span names must be string literals (the collector stores the pointer, not
/// a copy). Spans emit as Chrome "complete" (`ph:"X"`) events, so sibling
/// and nested spans on one thread render as a flame graph per thread.

namespace trace_internal {

/// Fast global enable flag read by every ScopedSpan constructor.
extern std::atomic<bool> g_enabled;

/// Microseconds since the collector's epoch (steady clock).
double NowMicros();

/// Appends a completed span to the calling thread's buffer.
void EmitSpan(const char* name, double start_us);

}  // namespace trace_internal

/// RAII span: opens at construction, closes (and records) at destruction.
///
/// \code
///   obs::ScopedSpan span("train/epoch");
/// \endcode
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name)
      : name_(trace_internal::g_enabled.load(std::memory_order_relaxed)
                  ? name
                  : nullptr),
        start_us_(name_ != nullptr ? trace_internal::NowMicros() : 0.0) {}

  ~ScopedSpan() {
    if (name_ != nullptr) trace_internal::EmitSpan(name_, start_us_);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  double start_us_;
};

/// Process-wide collector of per-thread span buffers.
class TraceCollector {
 public:
  /// One completed span, as drained for tests/export.
  struct Event {
    std::string name;
    double ts_us = 0.0;
    double dur_us = 0.0;
    int64_t tid = 0;
  };

  /// The process-wide collector (also reachable via CGKGR_TRACE).
  static TraceCollector& Default();

  /// True when spans are being recorded (fast, lock-free).
  static bool IsEnabled() {
    return trace_internal::g_enabled.load(std::memory_order_relaxed);
  }

  /// Starts recording. `path` is where WriteFile/at-exit export goes; pass
  /// "" to record without an at-exit file (tests drain explicitly). The
  /// first Enable with a non-empty path registers an at-exit exporter.
  void Enable(std::string path) CGKGR_EXCLUDES(mu_);

  /// Stops recording (already-buffered spans stay until drained).
  void Disable();

  /// The at-exit export path ("" when none).
  std::string output_path() const CGKGR_EXCLUDES(mu_);

  /// Removes and returns every buffered span, sorted by start time.
  std::vector<Event> DrainEvents() CGKGR_EXCLUDES(mu_);

  /// Drains into Chrome trace-event JSON (the `traceEvents` envelope).
  std::string DrainJson();

  /// Drains into a Chrome trace JSON file at output_path().
  Status WriteFile();

 private:
  friend void trace_internal::EmitSpan(const char* name, double start_us);

  TraceCollector() = default;

  struct ThreadBuffer;

  /// Registers (once per thread) and returns the calling thread's buffer.
  ThreadBuffer* BufferForThisThread() CGKGR_EXCLUDES(mu_);

  mutable Mutex mu_;
  std::string path_ CGKGR_GUARDED_BY(mu_);
  bool at_exit_registered_ CGKGR_GUARDED_BY(mu_) = false;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_ CGKGR_GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace cgkgr

#endif  // CGKGR_OBS_TRACE_H_
