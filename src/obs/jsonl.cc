#include "obs/jsonl.h"

#include <cmath>

#include "common/mutex.h"
#include "common/string_util.h"
#include "obs/json.h"

namespace cgkgr {
namespace obs {

JsonlRow& JsonlRow::AddRaw(std::string_view key, const std::string& rendered) {
  if (!body_.empty()) body_ += ", ";
  body_ += "\"" + JsonEscape(key) + "\": " + rendered;
  return *this;
}

JsonlRow& JsonlRow::Add(std::string_view key, std::string_view value) {
  return AddRaw(key, "\"" + JsonEscape(value) + "\"");
}

JsonlRow& JsonlRow::Add(std::string_view key, double value) {
  // NaN/Inf are not JSON; render as null so the line stays parseable.
  return AddRaw(key, std::isfinite(value) ? StrFormat("%.8g", value)
                                          : std::string("null"));
}

JsonlRow& JsonlRow::Add(std::string_view key, int64_t value) {
  return AddRaw(key, StrFormat("%lld", static_cast<long long>(value)));
}

JsonlSink::JsonlSink(const std::string& path)
    : path_(path), out_(path, std::ios::app) {
  if (!out_) {
    status_ = Status::IOError("cannot open JSONL sink: " + path);
  }
}

void JsonlSink::Write(const JsonlRow& row) {
  MutexLock lock(&mu_);
  if (!status_.ok()) return;
  out_ << row.ToJson() << '\n';
  out_.flush();
  if (!out_) {
    status_ = Status::IOError("write failed on JSONL sink: " + path_);
  }
}

Status JsonlSink::status() const {
  MutexLock lock(&mu_);
  return status_;
}

}  // namespace obs
}  // namespace cgkgr
