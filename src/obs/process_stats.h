#ifndef CGKGR_OBS_PROCESS_STATS_H_
#define CGKGR_OBS_PROCESS_STATS_H_

#include <cstdint>

namespace cgkgr {
namespace obs {

class MetricsRegistry;

/// \file
/// Process-level resource accounting: peak/current RSS, CPU time, thread
/// count. One Sample() reads getrusage(RUSAGE_SELF) and /proc/self/status;
/// SampleProcessStats() additionally publishes the sample as process_*
/// gauges in a MetricsRegistry. The exp runner samples at phase
/// boundaries, the training loop per epoch, and serve::Engine on snapshot
/// install, so every bench artifact and metrics dump carries the memory
/// footprint the ROADMAP's scale items are judged by.

/// One point-in-time sample of the process's resource usage.
struct ProcessStats {
  /// Resident set size right now (bytes; 0 when /proc is unavailable).
  int64_t current_rss_bytes = 0;
  /// High-water-mark RSS since process start (bytes). Monotone
  /// non-decreasing across samples.
  int64_t peak_rss_bytes = 0;
  /// User-mode CPU seconds consumed since process start.
  double cpu_user_seconds = 0.0;
  /// Kernel-mode CPU seconds consumed since process start.
  double cpu_system_seconds = 0.0;
  /// Live threads (1 when /proc is unavailable).
  int64_t num_threads = 1;

  /// Total CPU seconds (user + system). Monotone non-decreasing.
  double CpuSeconds() const { return cpu_user_seconds + cpu_system_seconds; }

  /// Reads the current process's usage. Never fails: fields degrade to
  /// their defaults when a source is missing (getrusage always works on
  /// Linux; /proc/self/status supplies current RSS and thread count).
  static ProcessStats Sample();
};

/// Samples and publishes into `registry` (the process-wide default when
/// null) as gauges: process_current_rss_bytes, process_peak_rss_bytes,
/// process_cpu_seconds, process_num_threads. Returns the sample.
ProcessStats SampleProcessStats(MetricsRegistry* registry = nullptr);

}  // namespace obs
}  // namespace cgkgr

#endif  // CGKGR_OBS_PROCESS_STATS_H_
