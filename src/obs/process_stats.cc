#include "obs/process_stats.h"

#include <sys/resource.h>
#include <sys/time.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/metrics.h"

namespace cgkgr {
namespace obs {

namespace {

double TimevalSeconds(const timeval& tv) {
  return static_cast<double>(tv.tv_sec) +
         static_cast<double>(tv.tv_usec) * 1e-6;
}

/// Parses the "Key:   <value> kB" lines of /proc/self/status we care
/// about. Missing file or keys leave the fields untouched.
void ReadProcSelfStatus(ProcessStats* stats) {
  std::ifstream in("/proc/self/status");
  if (!in) return;
  std::string line;
  while (std::getline(in, line)) {
    const auto parse_kb = [&line](const char* key, int64_t* out) {
      const size_t key_len = std::string(key).size();
      if (line.compare(0, key_len, key) != 0) return;
      long long kb = 0;
      if (std::sscanf(line.c_str() + key_len, "%lld", &kb) == 1) {
        *out = static_cast<int64_t>(kb) * 1024;
      }
    };
    parse_kb("VmRSS:", &stats->current_rss_bytes);
    parse_kb("VmHWM:", &stats->peak_rss_bytes);
    if (line.compare(0, 8, "Threads:") == 0) {
      long long threads = 0;
      if (std::sscanf(line.c_str() + 8, "%lld", &threads) == 1 &&
          threads > 0) {
        stats->num_threads = static_cast<int64_t>(threads);
      }
    }
  }
}

}  // namespace

ProcessStats ProcessStats::Sample() {
  ProcessStats stats;
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
    // ru_maxrss is KiB on Linux.
    stats.peak_rss_bytes = static_cast<int64_t>(usage.ru_maxrss) * 1024;
    stats.cpu_user_seconds = TimevalSeconds(usage.ru_utime);
    stats.cpu_system_seconds = TimevalSeconds(usage.ru_stime);
  }
  ReadProcSelfStatus(&stats);
  if (stats.current_rss_bytes == 0) {
    stats.current_rss_bytes = stats.peak_rss_bytes;
  }
  if (stats.peak_rss_bytes < stats.current_rss_bytes) {
    stats.peak_rss_bytes = stats.current_rss_bytes;
  }
  return stats;
}

ProcessStats SampleProcessStats(MetricsRegistry* registry) {
  const ProcessStats stats = ProcessStats::Sample();
  MetricsRegistry& reg =
      registry != nullptr ? *registry : MetricsRegistry::Default();
  // Pointers are registry-owned and stable, but SampleProcessStats is a
  // cold phase-boundary call, so the name lookups stay inline.
  reg.GetGauge("process_current_rss_bytes")
      ->Set(static_cast<double>(stats.current_rss_bytes));
  reg.GetGauge("process_peak_rss_bytes")
      ->Set(static_cast<double>(stats.peak_rss_bytes));
  reg.GetGauge("process_cpu_seconds")->Set(stats.CpuSeconds());
  reg.GetGauge("process_num_threads")
      ->Set(static_cast<double>(stats.num_threads));
  return stats;
}

}  // namespace obs
}  // namespace cgkgr
