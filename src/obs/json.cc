#include "obs/json.h"

#include <cmath>
#include <cstdlib>

#include "common/macros.h"
#include "common/string_util.h"

namespace cgkgr {
namespace obs {

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", static_cast<unsigned>(
                                          static_cast<unsigned char>(c)));
        } else {
          out += c;
        }
    }
  }
  return out;
}

Json Json::Bool(bool value) {
  Json j;
  j.kind_ = Kind::kBool;
  j.bool_ = value;
  return j;
}

Json Json::Int(int64_t value) {
  Json j;
  j.kind_ = Kind::kInt;
  j.int_ = value;
  return j;
}

Json Json::Double(double value) {
  Json j;
  j.kind_ = Kind::kDouble;
  j.double_ = value;
  return j;
}

Json Json::Str(std::string value) {
  Json j;
  j.kind_ = Kind::kString;
  j.string_ = std::move(value);
  return j;
}

Json Json::Array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json Json::Object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

bool Json::AsBool() const {
  CGKGR_CHECK_MSG(kind_ == Kind::kBool, "Json::AsBool on non-bool");
  return bool_;
}

int64_t Json::AsInt() const {
  CGKGR_CHECK_MSG(kind_ == Kind::kInt, "Json::AsInt on non-int");
  return int_;
}

double Json::AsDouble() const {
  if (kind_ == Kind::kInt) return static_cast<double>(int_);
  CGKGR_CHECK_MSG(kind_ == Kind::kDouble, "Json::AsDouble on non-number");
  return double_;
}

const std::string& Json::AsString() const {
  CGKGR_CHECK_MSG(kind_ == Kind::kString, "Json::AsString on non-string");
  return string_;
}

const std::vector<Json>& Json::items() const {
  CGKGR_CHECK_MSG(kind_ == Kind::kArray, "Json::items on non-array");
  return items_;
}

Json& Json::Append(Json value) {
  CGKGR_CHECK_MSG(kind_ == Kind::kArray, "Json::Append on non-array");
  items_.push_back(std::move(value));
  return *this;
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  CGKGR_CHECK_MSG(kind_ == Kind::kObject, "Json::members on non-object");
  return members_;
}

Json& Json::Set(std::string key, Json value) {
  CGKGR_CHECK_MSG(kind_ == Kind::kObject, "Json::Set on non-object");
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(std::move(key), std::move(value));
  return *this;
}

const Json* Json::Get(std::string_view key) const {
  CGKGR_CHECK_MSG(kind_ == Kind::kObject, "Json::Get on non-object");
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

double Json::GetDouble(std::string_view key, double fallback) const {
  const Json* v = Get(key);
  return (v != nullptr && v->is_number()) ? v->AsDouble() : fallback;
}

int64_t Json::GetInt(std::string_view key, int64_t fallback) const {
  const Json* v = Get(key);
  return (v != nullptr && v->is_int()) ? v->AsInt() : fallback;
}

std::string Json::GetString(std::string_view key,
                            const std::string& fallback) const {
  const Json* v = Get(key);
  return (v != nullptr && v->is_string()) ? v->AsString() : fallback;
}

namespace {

void AppendIndent(std::string* out, int indent, int depth) {
  if (indent <= 0) return;
  out->push_back('\n');
  out->append(static_cast<size_t>(indent * depth), ' ');
}

}  // namespace

void Json::DumpTo(std::string* out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull:
      *out += "null";
      return;
    case Kind::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Kind::kInt:
      *out += StrFormat("%lld", static_cast<long long>(int_));
      return;
    case Kind::kDouble:
      *out += std::isfinite(double_) ? StrFormat("%.10g", double_)
                                     : std::string("null");
      return;
    case Kind::kString:
      *out += "\"" + JsonEscape(string_) + "\"";
      return;
    case Kind::kArray: {
      if (items_.empty()) {
        *out += "[]";
        return;
      }
      *out += "[";
      for (size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) *out += indent > 0 ? "," : ", ";
        AppendIndent(out, indent, depth + 1);
        items_[i].DumpTo(out, indent, depth + 1);
      }
      AppendIndent(out, indent, depth);
      *out += "]";
      return;
    }
    case Kind::kObject: {
      if (members_.empty()) {
        *out += "{}";
        return;
      }
      *out += "{";
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) *out += indent > 0 ? "," : ", ";
        AppendIndent(out, indent, depth + 1);
        *out += "\"" + JsonEscape(members_[i].first) + "\": ";
        members_[i].second.DumpTo(out, indent, depth + 1);
      }
      AppendIndent(out, indent, depth);
      *out += "}";
      return;
    }
  }
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  if (indent > 0) out += "\n";
  return out;
}

namespace {

/// Recursive-descent parser over a string_view with a byte cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Json> ParseDocument() {
    Json value;
    CGKGR_RETURN_NOT_OK(ParseValue(&value, /*depth=*/0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& message) const {
    return Status::InvalidArgument(
        StrFormat("JSON parse error at offset %zu: %s", pos_,
                  message.c_str()));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Status ParseValue(Json* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out, depth);
    if (c == '[') return ParseArray(out, depth);
    if (c == '"') {
      std::string s;
      CGKGR_RETURN_NOT_OK(ParseString(&s));
      *out = Json::Str(std::move(s));
      return Status::OK();
    }
    if (ConsumeLiteral("true")) {
      *out = Json::Bool(true);
      return Status::OK();
    }
    if (ConsumeLiteral("false")) {
      *out = Json::Bool(false);
      return Status::OK();
    }
    if (ConsumeLiteral("null")) {
      *out = Json::Null();
      return Status::OK();
    }
    return ParseNumber(out);
  }

  Status ParseObject(Json* out, int depth) {
    ++pos_;  // '{'
    *out = Json::Object();
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return Status::OK();
    }
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      std::string key;
      CGKGR_RETURN_NOT_OK(ParseString(&key));
      if (out->Get(key) != nullptr) {
        return Error("duplicate object key \"" + key + "\"");
      }
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Error("expected ':' after object key");
      }
      ++pos_;
      Json value;
      CGKGR_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      out->Set(std::move(key), std::move(value));
      SkipWhitespace();
      if (pos_ >= text_.size()) return Error("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return Status::OK();
      }
      return Error("expected ',' or '}' in object");
    }
  }

  Status ParseArray(Json* out, int depth) {
    ++pos_;  // '['
    *out = Json::Array();
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return Status::OK();
    }
    while (true) {
      Json value;
      CGKGR_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      out->Append(std::move(value));
      SkipWhitespace();
      if (pos_ >= text_.size()) return Error("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return Status::OK();
      }
      return Error("expected ',' or ']' in array");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // opening '"'
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        ++pos_;
        continue;
      }
      if (pos_ + 1 >= text_.size()) return Error("truncated escape");
      const char esc = text_[pos_ + 1];
      pos_ += 2;
      switch (esc) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          uint32_t code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_ + static_cast<size_t>(i)];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<uint32_t>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<uint32_t>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<uint32_t>(h - 'A' + 10);
            } else {
              return Error("bad hex digit in \\u escape");
            }
          }
          pos_ += 4;
          // UTF-8 encode the code point (surrogate pairs are not combined;
          // the writer only emits \u00XX for control characters).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("unknown escape sequence");
      }
    }
    return Error("unterminated string");
  }

  Status ParseNumber(Json* out) {
    const size_t start = pos_;
    bool is_int = true;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_int = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return Error("expected a JSON value");
    const std::string token(text_.substr(start, pos_ - start));
    if (is_int) {
      int64_t value = 0;
      if (ParseInt64(token, &value)) {
        *out = Json::Int(value);
        return Status::OK();
      }
      // Integer overflow: fall through to double.
    }
    double value = 0.0;
    if (!ParseDouble(token, &value)) {
      pos_ = start;
      return Error("malformed number \"" + token + "\"");
    }
    *out = Json::Double(value);
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Json> Json::Parse(std::string_view text) {
  Parser parser(text);
  return parser.ParseDocument();
}

}  // namespace obs
}  // namespace cgkgr
